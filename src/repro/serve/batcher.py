"""The coalescer: merge many small lookup requests into one fused batch.

Two layers live here, both deliberately free of any event loop so the
latency-policy tests can drive them with a fake clock:

- :class:`Batcher` — the admission state machine.  Requests are queued
  into a *forming batch*; :meth:`add` reports when the
  :class:`~repro.serve.policy.AdmissionPolicy` size trigger fires,
  :meth:`deadline` exposes the single point in time the delay trigger
  would fire (``None`` while idle — the server arms exactly one timer
  per forming batch and none when idle), and :meth:`take` drains the
  batch for execution.
- :func:`merge_requests` / :func:`scatter_result` — the pure array math
  of coalescing.  Merge concatenates every request's key columns,
  dedups identical keys across requests (one fused-gather position per
  distinct key, however many requests asked for it), and remembers the
  per-request slices; scatter routes the store's one
  :class:`~repro.core.deep_mapping.LookupResult` back into bit-identical
  per-request results via the dedup inverse.

Parity argument: ``lookup`` is a pure function of (store state, key), so
looking a key up once and fanning the row out to every request that
asked for it returns exactly what each request's own ``lookup`` call
would have — the property test in ``tests/serve/test_property.py``
checks this for arbitrary partitions, overlaps, and misses.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.deep_mapping import LookupResult, normalize_keys
from ..resilience.deadline import Deadline
from ..resilience.partial import PartialResult
from .policy import AdmissionPolicy

__all__ = ["Batcher", "PendingRequest", "QueueFullError", "TenantQuotaError",
           "normalize_request_keys", "merge_requests", "scatter_result"]


class QueueFullError(RuntimeError):
    """Admission refused: the forming batch already holds
    ``policy.max_queue_requests`` requests (back-pressure).

    ``retry_after_s`` — when the server has a service-rate estimate —
    tells the caller how long the backlog is expected to take to clear;
    the TCP transport forwards it as ``retry_after_ms``.
    """

    def __init__(self, message: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class TenantQuotaError(QueueFullError):
    """Admission refused for ONE tenant: its queued keys would exceed
    its weighted fair-admission quota (``policy.tenant_quota_keys``).
    Other tenants keep admitting — this is the clip that stops a
    flooding tenant from consuming the whole queue."""


def normalize_request_keys(keys, key_names) -> Dict[str, np.ndarray]:
    """Validate and canonicalize one request's keys at admission time.

    Every accepted key shape is coerced to ``{name: int64 array}``.
    Doing the dtype check *here* — before the request joins a batch — is
    what keeps a malformed request from poisoning its batchmates: a
    string or float key raises to its own caller and never reaches the
    merge (``tests/serve/test_faults.py``).
    """
    columns = normalize_keys(keys, tuple(key_names))
    out: Dict[str, np.ndarray] = {}
    n = None
    for name in key_names:
        arr = np.asarray(columns[name])
        if arr.ndim != 1:
            raise TypeError(f"key column {name!r} must be 1-D, "
                            f"got shape {arr.shape}")
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(f"key column {name!r} must be integer, "
                            f"got dtype {arr.dtype}")
        if n is None:
            n = arr.size
        elif arr.size != n:
            raise ValueError(f"key columns disagree on length: "
                             f"{name!r} has {arr.size}, expected {n}")
        out[name] = arr.astype(np.int64, copy=False)
    return out


class PendingRequest:
    """One admitted request waiting in the forming batch."""

    __slots__ = ("key_cols", "n_keys", "tenant", "future", "admitted_at",
                 "deadline")

    def __init__(self, key_cols: Dict[str, np.ndarray], tenant: str,
                 future, admitted_at: float,
                 deadline: Optional[Deadline] = None):
        self.key_cols = key_cols
        self.n_keys = int(next(iter(key_cols.values())).size)
        self.tenant = tenant
        #: The caller's completion handle; the server decides its flavor
        #: (asyncio future in-process, set via call_soon_threadsafe from
        #: workers).  The batcher only carries it.
        self.future = future
        self.admitted_at = admitted_at
        #: Optional per-request :class:`~repro.resilience.Deadline` (on
        #: the batcher's clock).  A waiter's deadline can pull the flush
        #: point *earlier* than the policy delay — never later — and
        #: bounds its own store wait downstream.
        self.deadline = deadline


class Batcher:
    """Admission state machine for one store's forming batch.

    Not thread-safe by itself: the server confines every call to its
    event-loop thread.  ``clock`` is injectable (monotonic seconds) so
    tests advance time explicitly.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy or AdmissionPolicy()
        self.clock = clock
        self._pending: List[PendingRequest] = []
        self._pending_keys = 0
        self._tenant_keys: Dict[str, int] = {}
        self._deadline: Optional[float] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_keys(self) -> int:
        """Keys queued in the forming batch (pre-dedup)."""
        return self._pending_keys

    def tenant_queued_keys(self, tenant: str) -> int:
        """Keys ``tenant`` currently holds in the queue."""
        return self._tenant_keys.get(tenant, 0)

    def over_fair_share(self, tenant: str, extra_keys: int = 0) -> bool:
        """Would ``tenant`` (with ``extra_keys`` more) exceed its
        weighted fair share of the queued keys?

        Fair share is computed over the tenants *currently queued* (plus
        the candidate): a tenant alone in the queue is never over-share
        — there is nobody to be unfair to.  The shedder uses this to
        pick its first victims when the backlog estimate crosses the
        target: over-share tenants shed before anyone else feels it.
        """
        active = set(self._tenant_keys)
        active.add(tenant)
        if len(active) <= 1:
            return False
        total_weight = sum(self.policy.weight(name) for name in active)
        total_keys = self._pending_keys + extra_keys
        share = total_keys * self.policy.weight(tenant) / total_weight
        return self.tenant_queued_keys(tenant) + extra_keys > share

    def add(self, request: PendingRequest) -> bool:
        """Queue ``request``; True when the size trigger says flush now.

        The first request of a batch starts the delay clock; later
        requests never extend it (the *oldest* waiter bounds the delay).
        A request carrying its own :class:`Deadline` can pull the flush
        point earlier — a waiter with 5 ms of budget must not sit out a
        20 ms admission window — so after an ``add`` the server re-arms
        its timer whenever :meth:`deadline` moved up.  Raises
        :class:`QueueFullError` when the policy's queue bound is hit,
        or :class:`TenantQuotaError` when this tenant's weighted
        queued-key quota is — the caller fails that request alone.
        """
        limit = self.policy.max_queue_requests
        if limit is not None and len(self._pending) >= limit:
            raise QueueFullError(
                f"forming batch already holds {len(self._pending)} requests "
                f"(max_queue_requests={limit})")
        quota = self.policy.quota_keys(request.tenant)
        if quota is not None and \
                self.tenant_queued_keys(request.tenant) + request.n_keys \
                > quota:
            raise TenantQuotaError(
                f"tenant {request.tenant!r} holds "
                f"{self.tenant_queued_keys(request.tenant)} queued keys; "
                f"{request.n_keys} more would exceed its quota of "
                f"{quota:g}")
        if not self._pending:
            self._deadline = self.clock() + self.policy.max_delay_seconds
        if request.deadline is not None \
                and request.deadline.expires_at < self._deadline:
            # Pull the flush point earlier for the urgent waiter — but
            # never *to* its expiry: a timer firing at ``expires_at``
            # expires the request before the store call it queued for.
            # Flush halfway through its remaining budget so service
            # keeps the other half (an already-expired waiter flushes
            # now and fails alone in the pre-execute prune).
            now = self.clock()
            remaining = max(0.0, request.deadline.expires_at - now)
            self._deadline = now + remaining / 2.0
        self._pending.append(request)
        self._pending_keys += request.n_keys
        self._tenant_keys[request.tenant] = \
            self._tenant_keys.get(request.tenant, 0) + request.n_keys
        return self._pending_keys >= self.policy.max_batch_keys

    def evict_expired(self,
                      now: Optional[float] = None) -> List[PendingRequest]:
        """Remove (and return) queued waiters whose deadline has passed.

        A dead waiter must not hold a queue slot against live
        admissions: the server calls this when :meth:`add` reports the
        queue full, fails the evicted requests with their own
        ``DeadlineExceeded``, and retries the admission once.
        """
        if not self._pending:
            return []
        now = self.clock() if now is None else now
        expired = [r for r in self._pending
                   if r.deadline is not None and r.deadline.expires_at <= now]
        if expired:
            self._remove(expired)
        return expired

    def deadline(self) -> Optional[float]:
        """When the delay trigger fires, or None while idle.

        Set at first admission; only a later waiter's *earlier* request
        deadline can move it (always forward in urgency, never later),
        until :meth:`take` resets it.
        """
        return self._deadline if self._pending else None

    def due(self, now: Optional[float] = None) -> bool:
        """True when a forming batch has outlived ``max_delay_ms``."""
        if not self._pending:
            return False
        return (now if now is not None else self.clock()) >= self._deadline

    def take(self) -> List[PendingRequest]:
        """Drain the forming batch for execution.

        When everything queued fits under ``max_batch_keys`` (the common
        case — the size trigger flushes at the bound) the whole queue
        drains in arrival order, exactly the historical behavior.  Under
        overload more keys can be queued than one fused batch should
        carry; then the drain is **deficit-round-robin across tenants**:
        each tenant's queue is served FIFO, tenants take turns with a
        weight-scaled key quantum, and whatever does not fit stays
        queued for the next flush.  A flooding tenant is thereby clipped
        to its share of every batch while a light tenant's lone request
        always rides the next one — the fairness half of overload
        control (the shedder is the other half).

        Resets the delay clock to idle when the queue empties; otherwise
        re-points it at the oldest *remaining* waiter so the server can
        re-arm its timer for the leftovers.
        """
        if not self._pending:
            return []
        max_keys = self.policy.max_batch_keys
        if self._pending_keys <= max_keys or len(self._pending) == 1:
            batch, self._pending = self._pending, []
            self._pending_keys = 0
            self._tenant_keys.clear()
            self._deadline = None
            return batch
        batch = self._drr_select(max_keys)
        self._remove(batch)
        return batch

    def _drr_select(self, max_keys: int) -> List[PendingRequest]:
        """Pick ~``max_keys`` queued keys, deficit-round-robin by tenant.

        Tenants are visited in first-arrival order; each visit grants a
        weight-scaled quantum of key credit, and a tenant's queue pops
        (FIFO) while its credit covers its head request.  Credit grows
        every round, so the loop always terminates — and a head request
        larger than ``max_keys`` is still taken once the batch is
        otherwise empty (one oversized request flushes alone rather
        than wedging the queue).
        """
        queues: Dict[str, Deque[PendingRequest]] = {}
        order: List[str] = []
        for request in self._pending:
            if request.tenant not in queues:
                queues[request.tenant] = deque()
                order.append(request.tenant)
            queues[request.tenant].append(request)
        quantum = max(1, max_keys // max(1, len(order)))
        deficit = {tenant: 0.0 for tenant in order}
        taken: List[PendingRequest] = []
        taken_keys = 0
        while queues and taken_keys < max_keys:
            for tenant in order:
                queue = queues.get(tenant)
                if queue is None:
                    continue
                deficit[tenant] += quantum * self.policy.weight(tenant)
                while queue and deficit[tenant] >= queue[0].n_keys \
                        and taken_keys < max_keys:
                    request = queue.popleft()
                    deficit[tenant] -= request.n_keys
                    taken.append(request)
                    taken_keys += request.n_keys
                if not queue:
                    del queues[tenant]
        return taken

    def _remove(self, removed: List[PendingRequest]) -> None:
        """Drop ``removed`` from the queue and re-point the delay clock
        at the oldest remaining waiter (idle when none remain)."""
        removed_ids = {id(r) for r in removed}
        remaining = [r for r in self._pending if id(r) not in removed_ids]
        self._pending = remaining
        self._pending_keys = sum(r.n_keys for r in remaining)
        self._tenant_keys.clear()
        for request in remaining:
            self._tenant_keys[request.tenant] = \
                self._tenant_keys.get(request.tenant, 0) + request.n_keys
        if not remaining:
            self._deadline = None
            return
        # Leftover waiters were admitted before this flush: their policy
        # point (oldest admission + max_delay) has typically passed, so
        # the re-armed timer fires immediately and they ride the next
        # batch.  An urgent per-request deadline still pulls the point
        # earlier, with the same half-budget service margin as add().
        now = self.clock()
        point = min(r.admitted_at for r in remaining) \
            + self.policy.max_delay_seconds
        for request in remaining:
            if request.deadline is not None \
                    and request.deadline.expires_at < point:
                margin = max(0.0, request.deadline.expires_at - now) / 2.0
                point = min(point, now + margin)
        self._deadline = point


# --------------------------------------------------------------------------
# Array math: merge with dedup, scatter back
# --------------------------------------------------------------------------
def merge_requests(
    key_names: Sequence[str], requests: Sequence[PendingRequest],
) -> Tuple[Dict[str, np.ndarray], np.ndarray, List[Tuple[int, int]]]:
    """Coalesce requests into one deduped key batch.

    Returns ``(unique_cols, inverse, slices)``: the deduped batch to
    look up, the map from every merged position to its unique row, and
    each request's ``[lo, hi)`` slice of the merged order.  Request
    ``i``'s rows come back as ``unique_result[inverse[lo:hi]]``.
    """
    key_names = tuple(key_names)
    merged = {name: np.concatenate([r.key_cols[name] for r in requests])
              for name in key_names}
    slices: List[Tuple[int, int]] = []
    lo = 0
    for request in requests:
        slices.append((lo, lo + request.n_keys))
        lo += request.n_keys
    total = lo
    if total == 0:
        empty = {name: np.empty(0, dtype=np.int64) for name in key_names}
        return empty, np.empty(0, dtype=np.intp), slices
    if len(key_names) == 1:
        name = key_names[0]
        unique, inverse = np.unique(merged[name], return_inverse=True)
        unique_cols = {name: unique}
    else:
        stacked = np.stack([merged[name] for name in key_names], axis=1)
        unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
        unique_cols = {name: np.ascontiguousarray(unique[:, i])
                       for i, name in enumerate(key_names)}
    # numpy 2.0 briefly shaped the axis-aware inverse (n, 1); flatten so
    # downstream fancy indexing sees positions on every version.
    return unique_cols, np.asarray(inverse).reshape(-1), slices


def scatter_result(result: LookupResult, inverse: np.ndarray,
                   lo: int, hi: int) -> LookupResult:
    """One request's bit-identical slice of the deduped batch result.

    A :class:`~repro.resilience.PartialResult` (sharded store in
    ``on_shard_error="partial"`` mode) scatters as a partial result too:
    each request sees exactly its own slice of the ``failed_mask`` (a
    request none of whose keys landed on a failing shard gets an
    all-false mask — ``complete`` is true for it).
    """
    idx = inverse[lo:hi]
    values = {name: arr[idx] for name, arr in result.values.items()}
    failed = getattr(result, "failed_mask", None)
    if failed is not None:
        return PartialResult(
            found=result.found[idx], values=values,
            failed_mask=failed[idx],
            shard_errors=dict(result.shard_errors))
    return LookupResult(found=result.found[idx], values=values)
