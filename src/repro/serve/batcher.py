"""The coalescer: merge many small lookup requests into one fused batch.

Two layers live here, both deliberately free of any event loop so the
latency-policy tests can drive them with a fake clock:

- :class:`Batcher` — the admission state machine.  Requests are queued
  into a *forming batch*; :meth:`add` reports when the
  :class:`~repro.serve.policy.AdmissionPolicy` size trigger fires,
  :meth:`deadline` exposes the single point in time the delay trigger
  would fire (``None`` while idle — the server arms exactly one timer
  per forming batch and none when idle), and :meth:`take` drains the
  batch for execution.
- :func:`merge_requests` / :func:`scatter_result` — the pure array math
  of coalescing.  Merge concatenates every request's key columns,
  dedups identical keys across requests (one fused-gather position per
  distinct key, however many requests asked for it), and remembers the
  per-request slices; scatter routes the store's one
  :class:`~repro.core.deep_mapping.LookupResult` back into bit-identical
  per-request results via the dedup inverse.

Parity argument: ``lookup`` is a pure function of (store state, key), so
looking a key up once and fanning the row out to every request that
asked for it returns exactly what each request's own ``lookup`` call
would have — the property test in ``tests/serve/test_property.py``
checks this for arbitrary partitions, overlaps, and misses.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.deep_mapping import LookupResult, normalize_keys
from ..resilience.deadline import Deadline
from ..resilience.partial import PartialResult
from .policy import AdmissionPolicy

__all__ = ["Batcher", "PendingRequest", "QueueFullError",
           "normalize_request_keys", "merge_requests", "scatter_result"]


class QueueFullError(RuntimeError):
    """Admission refused: the forming batch already holds
    ``policy.max_queue_requests`` requests (back-pressure)."""


def normalize_request_keys(keys, key_names) -> Dict[str, np.ndarray]:
    """Validate and canonicalize one request's keys at admission time.

    Every accepted key shape is coerced to ``{name: int64 array}``.
    Doing the dtype check *here* — before the request joins a batch — is
    what keeps a malformed request from poisoning its batchmates: a
    string or float key raises to its own caller and never reaches the
    merge (``tests/serve/test_faults.py``).
    """
    columns = normalize_keys(keys, tuple(key_names))
    out: Dict[str, np.ndarray] = {}
    n = None
    for name in key_names:
        arr = np.asarray(columns[name])
        if arr.ndim != 1:
            raise TypeError(f"key column {name!r} must be 1-D, "
                            f"got shape {arr.shape}")
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError(f"key column {name!r} must be integer, "
                            f"got dtype {arr.dtype}")
        if n is None:
            n = arr.size
        elif arr.size != n:
            raise ValueError(f"key columns disagree on length: "
                             f"{name!r} has {arr.size}, expected {n}")
        out[name] = arr.astype(np.int64, copy=False)
    return out


class PendingRequest:
    """One admitted request waiting in the forming batch."""

    __slots__ = ("key_cols", "n_keys", "tenant", "future", "admitted_at",
                 "deadline")

    def __init__(self, key_cols: Dict[str, np.ndarray], tenant: str,
                 future, admitted_at: float,
                 deadline: Optional[Deadline] = None):
        self.key_cols = key_cols
        self.n_keys = int(next(iter(key_cols.values())).size)
        self.tenant = tenant
        #: The caller's completion handle; the server decides its flavor
        #: (asyncio future in-process, set via call_soon_threadsafe from
        #: workers).  The batcher only carries it.
        self.future = future
        self.admitted_at = admitted_at
        #: Optional per-request :class:`~repro.resilience.Deadline` (on
        #: the batcher's clock).  A waiter's deadline can pull the flush
        #: point *earlier* than the policy delay — never later — and
        #: bounds its own store wait downstream.
        self.deadline = deadline


class Batcher:
    """Admission state machine for one store's forming batch.

    Not thread-safe by itself: the server confines every call to its
    event-loop thread.  ``clock`` is injectable (monotonic seconds) so
    tests advance time explicitly.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy or AdmissionPolicy()
        self.clock = clock
        self._pending: List[PendingRequest] = []
        self._pending_keys = 0
        self._deadline: Optional[float] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_keys(self) -> int:
        """Keys queued in the forming batch (pre-dedup)."""
        return self._pending_keys

    def add(self, request: PendingRequest) -> bool:
        """Queue ``request``; True when the size trigger says flush now.

        The first request of a batch starts the delay clock; later
        requests never extend it (the *oldest* waiter bounds the delay).
        A request carrying its own :class:`Deadline` can pull the flush
        point earlier — a waiter with 5 ms of budget must not sit out a
        20 ms admission window — so after an ``add`` the server re-arms
        its timer whenever :meth:`deadline` moved up.  Raises
        :class:`QueueFullError` when the policy's queue bound is hit —
        the caller fails that request alone.
        """
        limit = self.policy.max_queue_requests
        if limit is not None and len(self._pending) >= limit:
            raise QueueFullError(
                f"forming batch already holds {len(self._pending)} requests "
                f"(max_queue_requests={limit})")
        if not self._pending:
            self._deadline = self.clock() + self.policy.max_delay_seconds
        if request.deadline is not None \
                and request.deadline.expires_at < self._deadline:
            # Pull the flush point earlier for the urgent waiter — but
            # never *to* its expiry: a timer firing at ``expires_at``
            # expires the request before the store call it queued for.
            # Flush halfway through its remaining budget so service
            # keeps the other half (an already-expired waiter flushes
            # now and fails alone in the pre-execute prune).
            now = self.clock()
            remaining = max(0.0, request.deadline.expires_at - now)
            self._deadline = now + remaining / 2.0
        self._pending.append(request)
        self._pending_keys += request.n_keys
        return self._pending_keys >= self.policy.max_batch_keys

    def deadline(self) -> Optional[float]:
        """When the delay trigger fires, or None while idle.

        Set at first admission; only a later waiter's *earlier* request
        deadline can move it (always forward in urgency, never later),
        until :meth:`take` resets it.
        """
        return self._deadline if self._pending else None

    def due(self, now: Optional[float] = None) -> bool:
        """True when a forming batch has outlived ``max_delay_ms``."""
        if not self._pending:
            return False
        return (now if now is not None else self.clock()) >= self._deadline

    def take(self) -> List[PendingRequest]:
        """Drain the forming batch (resets the delay clock to idle)."""
        batch, self._pending = self._pending, []
        self._pending_keys = 0
        self._deadline = None
        return batch


# --------------------------------------------------------------------------
# Array math: merge with dedup, scatter back
# --------------------------------------------------------------------------
def merge_requests(
    key_names: Sequence[str], requests: Sequence[PendingRequest],
) -> Tuple[Dict[str, np.ndarray], np.ndarray, List[Tuple[int, int]]]:
    """Coalesce requests into one deduped key batch.

    Returns ``(unique_cols, inverse, slices)``: the deduped batch to
    look up, the map from every merged position to its unique row, and
    each request's ``[lo, hi)`` slice of the merged order.  Request
    ``i``'s rows come back as ``unique_result[inverse[lo:hi]]``.
    """
    key_names = tuple(key_names)
    merged = {name: np.concatenate([r.key_cols[name] for r in requests])
              for name in key_names}
    slices: List[Tuple[int, int]] = []
    lo = 0
    for request in requests:
        slices.append((lo, lo + request.n_keys))
        lo += request.n_keys
    total = lo
    if total == 0:
        empty = {name: np.empty(0, dtype=np.int64) for name in key_names}
        return empty, np.empty(0, dtype=np.intp), slices
    if len(key_names) == 1:
        name = key_names[0]
        unique, inverse = np.unique(merged[name], return_inverse=True)
        unique_cols = {name: unique}
    else:
        stacked = np.stack([merged[name] for name in key_names], axis=1)
        unique, inverse = np.unique(stacked, axis=0, return_inverse=True)
        unique_cols = {name: np.ascontiguousarray(unique[:, i])
                       for i, name in enumerate(key_names)}
    # numpy 2.0 briefly shaped the axis-aware inverse (n, 1); flatten so
    # downstream fancy indexing sees positions on every version.
    return unique_cols, np.asarray(inverse).reshape(-1), slices


def scatter_result(result: LookupResult, inverse: np.ndarray,
                   lo: int, hi: int) -> LookupResult:
    """One request's bit-identical slice of the deduped batch result.

    A :class:`~repro.resilience.PartialResult` (sharded store in
    ``on_shard_error="partial"`` mode) scatters as a partial result too:
    each request sees exactly its own slice of the ``failed_mask`` (a
    request none of whose keys landed on a failing shard gets an
    all-false mask — ``complete`` is true for it).
    """
    idx = inverse[lo:hi]
    values = {name: arr[idx] for name, arr in result.values.items()}
    failed = getattr(result, "failed_mask", None)
    if failed is not None:
        return PartialResult(
            found=result.found[idx], values=values,
            failed_mask=failed[idx],
            shard_errors=dict(result.shard_errors))
    return LookupResult(found=result.found[idx], values=values)
