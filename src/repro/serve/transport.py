"""TCP/JSON-lines transport for the coalescing lookup server.

Wire format: one JSON object per ``\\n``-terminated line, both ways.

Request fields:

- ``id`` — opaque; echoed on the response so pipelined requests match up;
- ``op`` — ``"lookup"`` (default), ``"stats"``, or ``"ping"``;
- ``keys`` — ``{column: [int, ...]}`` for lookups;
- ``tenant`` — optional stats bucket (defaults to the server default);
- ``deadline_ms`` — optional end-to-end budget for this lookup; an
  exhausted budget answers ``error: "DeadlineExceeded: ..."`` for that
  request alone (the connection, and its batchmates, live on).

Responses carry the echoed ``id`` plus either ``found``/``values``
(lookup), ``stats`` (a :meth:`~repro.serve.stats.ServeStats.snapshot`),
``pong`` (ping), or ``error`` (a message string; the connection stays
open — one bad request fails alone, same containment as in-process).
Error responses also carry ``error_type`` (the server-side exception
class name) and, for overload rejections, ``retry_after_ms`` — so
:class:`TCPClient` re-raises **typed** errors
(:class:`~repro.serve.shedding.ServerOverloadedError` with its
retry-after hint, :class:`~repro.serve.shedding.ServerDrainingError`)
instead of a generic ``RuntimeError`` string.

Control verbs for a fronting balancer / process manager:

- ``op: "health"`` — the server's readiness/liveness snapshot
  (``ready`` flips false the moment a drain starts);
- ``op: "drain"`` — zero-downtime shutdown: stops admission, finishes
  every admitted request, answers with the drain report.

Every request line becomes its own task on the server loop, so requests
pipelined on one connection — and across connections — coalesce into the
same fused batches as in-process callers.  :class:`TCPClient` is the
synchronous counterpart used by tests, the benchmark's network mode, and
anyone poking a server with a socket.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Dict, Optional

import numpy as np

from ..resilience.deadline import default_timeout
from ..resilience.retry import RetryPolicy, retry
from .server import DEFAULT_TENANT, LookupServer
from .shedding import ServerDrainingError, ServerOverloadedError

__all__ = ["serve_tcp", "TCPClient", "BackgroundTCPServer", "encode_result"]

#: Server-side exception class names the client maps back to a typed
#: overload error (all carry an optional retry-after hint).
_OVERLOAD_ERROR_TYPES = frozenset(
    {"ServerOverloadedError", "QueueFullError", "TenantQuotaError"})

#: Refuse lines longer than this (64 MiB) instead of buffering forever.
MAX_LINE_BYTES = 64 * 1024 * 1024


def encode_result(result) -> Dict[str, list]:
    """JSON-encodable form of a :class:`LookupResult`."""
    return {
        "found": [bool(f) for f in result.found],
        "values": {name: np.asarray(arr).tolist()
                   for name, arr in result.values.items()},
    }


async def _handle_line(server: LookupServer, line: bytes) -> Dict:
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"id": None, "error": f"bad JSON: {exc}"}
    request_id = message.get("id")
    op = message.get("op", "lookup")
    try:
        if op == "ping":
            return {"id": request_id, "pong": True}
        if op == "stats":
            return {"id": request_id, "stats": server.stats.snapshot()}
        if op == "health":
            return {"id": request_id, "health": server.health}
        if op == "drain":
            report = await server.drain()
            return {"id": request_id, "drain": report}
        if op != "lookup":
            return {"id": request_id, "error": f"unknown op {op!r}"}
        raw = message.get("keys")
        if not isinstance(raw, dict):
            return {"id": request_id,
                    "error": "lookup needs keys: {column: [ints]}"}
        keys = {name: np.asarray(values) for name, values in raw.items()}
        result = await server.lookup(keys,
                                     message.get("tenant", DEFAULT_TENANT),
                                     deadline_ms=message.get("deadline_ms"))
        response = {"id": request_id}
        response.update(encode_result(result))
        return response
    except asyncio.CancelledError:
        return {"id": request_id, "error": "server closed",
                "error_type": "CancelledError"}
    except Exception as exc:  # containment: this request fails alone
        response = {"id": request_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_type": type(exc).__name__}
        retry_after = getattr(exc, "retry_after_s", None)
        if retry_after is not None:
            response["retry_after_ms"] = retry_after * 1000.0
        return response


async def serve_tcp(server: LookupServer, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
    """Start listening; returns the asyncio server (caller owns lifetime).

    ``port=0`` picks a free port — read it back from
    ``tcp_server.sockets[0].getsockname()[1]``.
    """

    async def handle_connection(reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def respond(line: bytes) -> None:
            response = await _handle_line(server, line)
            payload = (json.dumps(response) + "\n").encode()
            async with write_lock:
                writer.write(payload)
                try:
                    await writer.drain()
                except ConnectionError:
                    pass

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    break
                # One task per request: pipelined lines coalesce instead
                # of serializing behind each other's batch.
                task = asyncio.ensure_future(respond(line))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    return await asyncio.start_server(handle_connection, host, port,
                                      limit=MAX_LINE_BYTES)


class BackgroundTCPServer:
    """A TCP lookup server on its own event-loop thread.

    The embeddable form of ``python -m repro serve``: tests and
    benchmarks start one in-process, connect :class:`TCPClient`\\ s to
    ``.port``, and tear it down with :meth:`close` (which drains
    in-flight batches before stopping the loop).
    """

    def __init__(self, store, policy=None, stats=None, shedder=None,
                 host: str = "127.0.0.1", port: int = 0,
                 control_timeout: Optional[float] = None):
        import threading

        self.server = LookupServer(store, policy=policy, stats=stats,
                                   shedder=shedder)
        self.host = host
        #: Bound on control-plane waits (startup, shutdown drain, loop
        #: join); defaults to the fleet-wide
        #: :data:`~repro.resilience.DEFAULT_TIMEOUT_S`.
        self.control_timeout = default_timeout(control_timeout)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-tcp", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            serve_tcp(self.server, host, port), self._loop)
        self._tcp = future.result(timeout=self.control_timeout)
        self.port: int = self._tcp.sockets[0].getsockname()[1]
        self._closed = False

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def stats(self):
        return self.server.stats

    def connect(self, timeout: Optional[float] = None) -> "TCPClient":
        """A fresh blocking client bound to this server."""
        return TCPClient(self.host, self.port, timeout=timeout)

    def drain(self) -> Dict[str, int]:
        """Gracefully drain: stop the listener, refuse new admissions,
        finish every admitted request, stop the loop.  Returns the
        drain report; afterwards the server is closed."""
        if self._closed:
            return {"flushed_requests": 0, "awaited_batches": 0}
        self._closed = True

        async def _drain() -> Dict[str, int]:
            self._tcp.close()
            await self._tcp.wait_closed()
            return await self.server.drain()

        report = asyncio.run_coroutine_threadsafe(
            _drain(), self._loop).result(timeout=self.control_timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=self.control_timeout)
        self._loop.close()
        return report

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def _shutdown() -> None:
            self._tcp.close()
            await self._tcp.wait_closed()
            await self.server.aclose()

        asyncio.run_coroutine_threadsafe(
            _shutdown(), self._loop).result(timeout=self.control_timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=self.control_timeout)
        self._loop.close()

    def __enter__(self) -> "BackgroundTCPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TCPClient:
    """Blocking JSON-lines client for one server connection.

    One request at a time per client instance; spin up one client per
    thread for concurrency (responses are matched by ``id``, so even a
    shared connection would stay coherent — this class just keeps the
    sync API simple).

    ``timeout`` (default :data:`~repro.resilience.DEFAULT_TIMEOUT_S`)
    bounds the connect and every socket read/write.  The connect itself
    retries transient refusals/resets up to ``connect_attempts`` times
    with jittered exponential backoff — a server still binding its port
    costs a few milliseconds, not a failure — then raises the last
    ``OSError``.
    """

    #: Transient-connect retry schedule (attempts beyond the first cost
    #: ~10-100 ms each; DNS/EACCES-style failures are OSErrors too and
    #: retry the same bounded number of times before surfacing).
    CONNECT_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.2,
                                retry_on=(ConnectionError, OSError))

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = None,
                 connect_attempts: Optional[int] = None):
        bound = default_timeout(timeout)
        policy = self.CONNECT_RETRY
        if connect_attempts is not None:
            policy = RetryPolicy(attempts=max(1, int(connect_attempts)),
                                 base_delay=policy.base_delay,
                                 max_delay=policy.max_delay,
                                 retry_on=policy.retry_on)
        self._sock = retry(
            lambda: socket.create_connection((host, port), timeout=bound),
            policy)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def _call(self, message: Dict) -> Dict:
        self._next_id += 1
        message = dict(message, id=self._next_id)
        self._file.write((json.dumps(message) + "\n").encode())
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != self._next_id:
            raise RuntimeError(f"response id {response.get('id')!r} does not "
                               f"match request id {self._next_id}")
        return response

    def lookup(self, keys: Dict, tenant: Optional[str] = None,
               deadline_ms: Optional[float] = None) -> Dict:
        """Lookup; returns ``{"found": [...], "values": {col: [...]}}``.

        ``deadline_ms`` rides the wire as the request's end-to-end
        budget on the server side.  Server-side errors re-raise typed
        where the wire says how: overload rejections raise
        :class:`~repro.serve.shedding.ServerOverloadedError` (with
        ``retry_after_s`` from the server's hint — catchable as the
        ``RuntimeError`` older callers already handle), a draining
        server raises
        :class:`~repro.serve.shedding.ServerDrainingError`, and
        everything else stays a ``RuntimeError`` with the server's
        message (including a blown deadline, ``DeadlineExceeded: ...``).
        """
        message: Dict = {"op": "lookup",
                         "keys": {name: np.asarray(values).tolist()
                                  for name, values in keys.items()}}
        if tenant is not None:
            message["tenant"] = tenant
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        response = self._call(message)
        if "error" in response:
            raise self._typed_error(response)
        return response

    @staticmethod
    def _typed_error(response: Dict) -> RuntimeError:
        """Rebuild a typed exception from an error response's
        ``error_type``/``retry_after_ms`` fields (plain ``RuntimeError``
        for everything the client has no type for)."""
        error_type = response.get("error_type")
        message = response["error"]
        if error_type in _OVERLOAD_ERROR_TYPES:
            retry_ms = response.get("retry_after_ms")
            return ServerOverloadedError(
                message,
                retry_after_s=(retry_ms / 1000.0
                               if retry_ms is not None else None))
        if error_type == "ServerDrainingError":
            return ServerDrainingError(message)
        return RuntimeError(message)

    def stats(self) -> Dict:
        """The server's live :meth:`ServeStats.snapshot`."""
        response = self._call({"op": "stats"})
        if "error" in response:
            raise RuntimeError(response["error"])
        return response["stats"]

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def health(self) -> Dict:
        """The server's readiness/liveness snapshot."""
        response = self._call({"op": "health"})
        if "error" in response:
            raise self._typed_error(response)
        return response["health"]

    def drain(self) -> Dict:
        """Ask the server to drain; returns its drain report.

        The server finishes every admitted request before answering, so
        this blocks for the in-flight work (bounded by the client's
        socket timeout).
        """
        response = self._call({"op": "drain"})
        if "error" in response:
            raise self._typed_error(response)
        return response["drain"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
