"""Admission policy for the coalescing lookup server.

Micro-batching trades a bounded amount of queueing delay for the fused
kernel's large-batch throughput (BENCH_lookup / BENCH_pipeline: keys/s
scales strongly with batch size).  :class:`AdmissionPolicy` holds that
trade-off as two knobs:

- ``max_batch_keys`` — a forming batch that reaches this many merged
  keys flushes immediately (the size trigger; protects tail latency of
  the requests already queued when traffic is heavy);
- ``max_delay_ms`` — the oldest queued request never waits longer than
  this before its batch flushes (the time trigger; bounds added latency
  when traffic is light).

An idle server has no timers armed at all: the delay clock starts when
the *first* request of a batch is admitted, so there are zero wakeups
without traffic (asserted by ``tests/serve/test_policy.py``).

The remaining knobs are the **overload-control** surface (see
``docs/serving.md``): ``max_queue_requests`` is the hard back-pressure
bound, ``tenant_quota_keys`` / ``tenant_weights`` bound each tenant's
slice of the queue so one flooding tenant cannot starve the window, and
the batcher's deficit-round-robin drain uses the same weights to decide
*which* queued requests ride the next fused batch when more are queued
than fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs bounding how long and how large a coalesced batch may grow."""

    #: Flush as soon as the forming batch holds this many keys (summed
    #: over queued requests, before cross-request dedup).
    max_batch_keys: int = 8192
    #: Flush at most this many milliseconds after the batch's first
    #: request was admitted, even if the batch is still small.
    max_delay_ms: float = 2.0
    #: Refuse admission once this many requests are queued in the
    #: forming batch (back-pressure; ``None`` = unbounded).
    max_queue_requests: Optional[int] = None
    #: Per-tenant fair-admission quota: a tenant of weight 1.0 may hold
    #: at most this many *keys* in the queue at once (a tenant of
    #: weight ``w`` holds ``w`` times as many).  ``None`` disables the
    #: quota — the historical single-bound behavior.
    tenant_quota_keys: Optional[int] = None
    #: Relative service weights by tenant name (unnamed tenants weigh
    #: 1.0).  Weights scale both the admission quota and the
    #: deficit-round-robin quantum used when draining an over-full
    #: queue into a fused batch.
    tenant_weights: Optional[Mapping[str, float]] = field(default=None)

    def __post_init__(self):
        if self.max_batch_keys < 1:
            raise ValueError("max_batch_keys must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.max_queue_requests is not None and self.max_queue_requests < 1:
            raise ValueError("max_queue_requests must be >= 1 or None")
        if self.tenant_quota_keys is not None and self.tenant_quota_keys < 1:
            raise ValueError("tenant_quota_keys must be >= 1 or None")
        if self.tenant_weights is not None:
            for name, weight in self.tenant_weights.items():
                if not weight > 0:
                    raise ValueError(
                        f"tenant weight for {name!r} must be > 0, "
                        f"got {weight!r}")

    @property
    def max_delay_seconds(self) -> float:
        """``max_delay_ms`` in the seconds every clock in the repo uses."""
        return self.max_delay_ms / 1000.0

    def weight(self, tenant: str) -> float:
        """``tenant``'s service weight (1.0 unless configured)."""
        if self.tenant_weights is None:
            return 1.0
        return float(self.tenant_weights.get(tenant, 1.0))

    def quota_keys(self, tenant: str) -> Optional[float]:
        """Queued-key cap for ``tenant`` (weight-scaled), None = unbounded."""
        if self.tenant_quota_keys is None:
            return None
        return self.tenant_quota_keys * self.weight(tenant)
