"""Admission policy for the coalescing lookup server.

Micro-batching trades a bounded amount of queueing delay for the fused
kernel's large-batch throughput (BENCH_lookup / BENCH_pipeline: keys/s
scales strongly with batch size).  :class:`AdmissionPolicy` holds that
trade-off as two knobs:

- ``max_batch_keys`` — a forming batch that reaches this many merged
  keys flushes immediately (the size trigger; protects tail latency of
  the requests already queued when traffic is heavy);
- ``max_delay_ms`` — the oldest queued request never waits longer than
  this before its batch flushes (the time trigger; bounds added latency
  when traffic is light).

An idle server has no timers armed at all: the delay clock starts when
the *first* request of a batch is admitted, so there are zero wakeups
without traffic (asserted by ``tests/serve/test_policy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs bounding how long and how large a coalesced batch may grow."""

    #: Flush as soon as the forming batch holds this many keys (summed
    #: over queued requests, before cross-request dedup).
    max_batch_keys: int = 8192
    #: Flush at most this many milliseconds after the batch's first
    #: request was admitted, even if the batch is still small.
    max_delay_ms: float = 2.0
    #: Refuse admission once this many requests are queued in the
    #: forming batch (back-pressure; ``None`` = unbounded).
    max_queue_requests: Optional[int] = None

    def __post_init__(self):
        if self.max_batch_keys < 1:
            raise ValueError("max_batch_keys must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.max_queue_requests is not None and self.max_queue_requests < 1:
            raise ValueError("max_queue_requests must be >= 1 or None")

    @property
    def max_delay_seconds(self) -> float:
        """``max_delay_ms`` in the seconds every clock in the repo uses."""
        return self.max_delay_ms / 1000.0
