"""Workload generation for the benchmark harness.

The paper's lookup workload issues batches of B randomly selected keys
(Sec. V-B), with B swept from 1,000 to 100,000; modification workloads
insert/delete fractions of the dataset.  Helpers here generate those
batches deterministically.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..data.table import ColumnTable

__all__ = ["random_key_batch", "key_batches", "delete_batch"]


def random_key_batch(
    table: ColumnTable, batch_size: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """One batch of ``batch_size`` keys sampled (with replacement) from the
    table's existing keys — the paper's random-lookup workload."""
    idx = rng.integers(0, table.n_rows, size=batch_size)
    return {k: table.column(k)[idx] for k in table.key}


def key_batches(
    table: ColumnTable,
    batch_size: int,
    repeats: int,
    seed: int = 0,
) -> List[Dict[str, np.ndarray]]:
    """``repeats`` independent random key batches (the paper averages 5)."""
    rng = np.random.default_rng((seed, batch_size))
    return [random_key_batch(table, batch_size, rng) for _ in range(repeats)]


def delete_batch(
    table: ColumnTable, fraction: float, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """A set of existing keys covering ``fraction`` of the table."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    count = max(1, int(table.n_rows * fraction))
    idx = rng.choice(table.n_rows, size=count, replace=False)
    return {k: table.column(k)[idx] for k in table.key}
