"""Plain-text report formatting for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, in aligned plain text (the environment has no plotting
stack, so figures become value series).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_storage_latency_table",
    "format_breakdown",
    "format_series",
    "running_average",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Align a list of rows under headers."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row]
                                           for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "failed"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_storage_latency_table(
    results,
    batch_sizes: Sequence[int],
    title: str,
    include_peak: bool = True,
) -> str:
    """The paper's Table I/II row shape: storage + latency per batch size,
    plus the run-time pool footprint (the paper's memory desideratum)."""
    headers = ["system", "storage (KB)"] + [
        f"B={b} (ms)" for b in batch_sizes
    ]
    if include_peak:
        headers.append("peak pool (KB)")
    rows = []
    for result in results:
        row: List[object] = [result.system, result.storage_bytes / 1024.0]
        for b in batch_sizes:
            row.append(result.latency_ms(b))
        if include_peak:
            row.append(getattr(result, "peak_pool_bytes", 0) / 1024.0)
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_breakdown(
    label: str,
    breakdown: Dict[str, float],
    buckets: Sequence[str] = (
        "existence", "inference", "locate", "search",
        "io", "decompress", "deserialize", "decode",
    ),
) -> str:
    """One Figure 7-style stacked row: seconds per timing bucket."""
    parts = [f"{label}:"]
    total = sum(breakdown.get(f"{b}_seconds", 0.0) for b in buckets)
    for bucket in buckets:
        seconds = breakdown.get(f"{bucket}_seconds", 0.0)
        if seconds > 0:
            share = 100.0 * seconds / total if total else 0.0
            parts.append(f"{bucket}={seconds * 1000:.1f}ms({share:.0f}%)")
    return " ".join(parts)


def format_series(name: str, xs: Sequence[object],
                  ys: Sequence[Optional[float]], unit: str = "") -> str:
    """A figure series as aligned x -> y pairs."""
    pairs = []
    for x, y in zip(xs, ys):
        if y is None:
            pairs.append(f"{x}: failed")
        else:
            pairs.append(f"{x}: {_fmt(float(y))}{unit}")
    return f"{name}  " + "  ".join(pairs)


def running_average(values: Sequence[float], window: int) -> np.ndarray:
    """The paper's Fig. 9 smoothing (running average over a window)."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 1 or values.size == 0:
        return values
    window = min(window, values.size)
    kernel = np.ones(window) / window
    padded = np.concatenate([np.full(window - 1, values[0]), values])
    return np.convolve(padded, kernel, mode="valid")
