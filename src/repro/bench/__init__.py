"""Benchmark harness: workloads, measurement, reporting."""

from .report import (
    format_breakdown,
    format_series,
    format_storage_latency_table,
    format_table,
    running_average,
)
from .runner import (
    DM_VARIANTS,
    SystemResult,
    build_system,
    dm_with_codec,
    measure_lookup,
    run_comparison,
    storage_of,
)
from .workload import delete_batch, key_batches, random_key_batch

__all__ = [
    "random_key_batch",
    "key_batches",
    "delete_batch",
    "SystemResult",
    "build_system",
    "dm_with_codec",
    "measure_lookup",
    "run_comparison",
    "storage_of",
    "DM_VARIANTS",
    "format_table",
    "format_storage_latency_table",
    "format_breakdown",
    "format_series",
    "running_average",
]
