"""Measurement harness: build systems, time lookups, collect breakdowns.

This module reproduces the paper's experimental mechanics:

- every system (DeepMapping variants and baselines) is built over the same
  :class:`~repro.data.table.ColumnTable` and queried with identical random
  key batches;
- the available memory is modelled by a byte-budgeted LRU
  :class:`~repro.storage.buffer_pool.BufferPool` shared by a system's
  partitions (the paper's small/medium/large machines);
- per-bucket timers provide the Figure 7 latency breakdown;
- systems that cannot operate under the budget (DeepSqueeze's whole-table
  decode) are reported as ``failed`` like in Table I.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import make_baseline
from ..core.config import DeepMappingConfig
from ..core.deep_mapping import DeepMapping
from ..data.table import ColumnTable
from ..storage.buffer_pool import BufferPool, MemoryBudgetError
from ..storage.stats import StoreStats
from .workload import key_batches

__all__ = [
    "SystemResult",
    "build_system",
    "dm_with_codec",
    "measure_lookup",
    "run_comparison",
    "DM_VARIANTS",
]

#: DeepMapping variants by auxiliary codec, in the paper's naming.
DM_VARIANTS = {"DM-Z": "zstd", "DM-L": "lzma"}


@dataclass
class SystemResult:
    """Storage and latency outcome for one system on one workload."""

    system: str
    storage_bytes: int
    #: batch size -> mean seconds per batch (None = failed / OOM).
    latencies: Dict[int, Optional[float]] = field(default_factory=dict)
    #: Figure 7 buckets from the final run (seconds).
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Peak bytes resident in the system's buffer pool during the runs —
    #: the paper's run-time memory footprint desideratum.
    peak_pool_bytes: int = 0

    def latency_ms(self, batch: int) -> Optional[float]:
        """Convenience: latency in milliseconds."""
        value = self.latencies.get(batch)
        return None if value is None else value * 1000.0


def build_system(
    name: str,
    table: ColumnTable,
    pool: Optional[BufferPool] = None,
    stats: Optional[StoreStats] = None,
    dm_config: Optional[DeepMappingConfig] = None,
    partition_bytes: int = 64 * 1024,
    dm_template: Optional[DeepMapping] = None,
):
    """Build a named system ("DM-Z", "DM-L", or any baseline) over a table.

    ``dm_template`` lets DM variants share one trained model: the template's
    model/existence/decoder are reused and only the auxiliary table is
    rebuilt with the variant's codec (the two differ only there).
    """
    stats = stats if stats is not None else StoreStats()
    if name in DM_VARIANTS:
        if dm_template is not None:
            return dm_with_codec(dm_template, DM_VARIANTS[name], pool=pool,
                                 stats=stats)
        config = dm_config if dm_config is not None else DeepMappingConfig()
        config = _with_aux(config, DM_VARIANTS[name], partition_bytes)
        return DeepMapping.fit(table, config, pool=pool, stats=stats)
    store = make_baseline(name, target_partition_bytes=partition_bytes,
                          pool=pool, stats=stats)
    return store.build(table)


def _with_aux(config: DeepMappingConfig, codec: str,
              partition_bytes: int) -> DeepMappingConfig:
    from dataclasses import replace

    return replace(config, aux_codec=codec,
                   aux_partition_bytes=partition_bytes)


def dm_with_codec(
    template: DeepMapping,
    codec: str,
    pool: Optional[BufferPool] = None,
    stats: Optional[StoreStats] = None,
) -> DeepMapping:
    """Clone a DeepMapping, re-compressing only its auxiliary table.

    DM-Z and DM-L share the trained model; cloning avoids retraining when
    benchmarking both (the paper evaluates them as codec variants).
    """
    from dataclasses import replace

    from ..core.aux_table import AuxiliaryTable

    stats = stats if stats is not None else StoreStats()
    keys, codes = template.aux.scan()
    aux = AuxiliaryTable(
        tasks=template.fdecode.columns,
        codec=codec,
        target_partition_bytes=template.config.aux_partition_bytes,
        pool=pool,
        stats=stats,
        auto_compact_rows=template.config.aux_auto_compact_rows,
    )
    aux.build(keys, codes)
    clone = DeepMapping(
        key_codec=template.key_codec,
        key_encoder=template.key_encoder,
        session=template.session,
        aux=aux,
        exist=template.exist,
        fdecode=template.fdecode,
        config=replace(template.config, aux_codec=codec),
        dataset_bytes=template._dataset_bytes,
        stats=stats,
    )
    return clone


def storage_of(system) -> int:
    """Uniform storage accessor for DeepMapping and baselines."""
    if isinstance(system, DeepMapping):
        return system.storage_bytes()
    return system.stored_bytes()


def measure_lookup(
    system,
    batches: Sequence[Dict[str, np.ndarray]],
) -> Optional[float]:
    """Mean wall seconds per batch; None when the system fails (OOM)."""
    took: List[float] = []
    try:
        for batch in batches:
            start = time.perf_counter()
            system.lookup(batch)
            took.append(time.perf_counter() - start)
    except MemoryBudgetError:
        return None
    return float(np.mean(took))


def run_comparison(
    table: ColumnTable,
    systems: Sequence[str],
    batch_sizes: Sequence[int],
    memory_budget: Optional[int] = None,
    repeats: int = 3,
    dm_config: Optional[DeepMappingConfig] = None,
    partition_bytes: int = 64 * 1024,
    strict_pool_for: Sequence[str] = ("DS",),
    seed: int = 0,
) -> List[SystemResult]:
    """Build every system over ``table`` and time random-key lookups.

    Mirrors the paper's per-workload tables: one row per system with its
    offline storage size plus the mean lookup latency per batch size.
    Each system gets a private pool with the same byte budget; systems in
    ``strict_pool_for`` fail hard when a working set exceeds it.
    """
    results: List[SystemResult] = []
    dm_template: Optional[DeepMapping] = None
    for name in systems:
        stats = StoreStats()
        pool = BufferPool(budget_bytes=memory_budget, stats=stats,
                          strict=name in strict_pool_for)
        system = build_system(
            name, table, pool=pool, stats=stats, dm_config=dm_config,
            partition_bytes=partition_bytes, dm_template=dm_template,
        )
        if isinstance(system, DeepMapping) and dm_template is None:
            dm_template = system
        result = SystemResult(system=name, storage_bytes=storage_of(system))
        for batch_size in batch_sizes:
            batches = key_batches(table, batch_size, repeats, seed=seed)
            stats_reset_safe(system)
            result.latencies[batch_size] = measure_lookup(system, batches)
        result.breakdown = dict(stats.snapshot())
        result.peak_pool_bytes = pool.peak_bytes
        results.append(result)
    return results


def stats_reset_safe(system) -> None:
    """Reset a system's stats sink if it has one."""
    stats = getattr(system, "stats", None)
    if stats is not None:
        stats.reset()
