"""Process-wide read-through cache for deserialized store payloads.

``repro.open(url, writable=False)`` opens are immutable by contract, so
the expensive part of an open — reading the payload, unpickling it, and
rebuilding the auxiliary partitions — can be done once per *blob
content* and shared by every subsequent open in the process.
:class:`BlobCache` holds those deserialized bundles behind a byte-budgeted
LRU, keyed on ``(backend identity, blob name)`` and guarded by the
backend's freshness stamp (inode+mtime+size for ``file://``, a write
counter for ``mem://``, the archive stamp for ``zip://`` — see
:func:`repro.storage.backends.blob_version`):

- a **hit** requires the stored version to equal the blob's *current*
  version; a re-saved blob therefore misses naturally, even without an
  explicit invalidation;
- ``save`` paths additionally call :meth:`BlobCache.invalidate` /
  :meth:`BlobCache.invalidate_backend` so retired bundles free their
  memory immediately instead of waiting for LRU pressure;
- blobs whose backend cannot produce a version stamp are never cached
  (served fresh every time), so correctness never depends on the
  capability being present.

One shared instance serves the whole process (:func:`payload_cache`);
its budget is adjustable via :func:`configure_payload_cache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Optional, Tuple

from ..resilience.errors import StoreCorruptedError
from .backends import StorageBackend, backend_identity, blob_version

__all__ = ["BlobCache", "payload_cache", "configure_payload_cache"]

#: Default budget of the process-wide payload cache.  Sized for "a few
#: warm stores", not "every store ever opened" — tune with
#: :func:`configure_payload_cache`.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


class BlobCache:
    """Byte-budgeted LRU of per-blob deserialized objects.

    Thread-safe; loaders run outside the lock.  Unlike
    :class:`~repro.storage.buffer_pool.BufferPool` (hot-path partition
    faults), opens are rare and idempotent, so concurrent misses on the
    same blob may both load — last insert wins.
    """

    def __init__(self, budget_bytes: Optional[int] = DEFAULT_BUDGET_BYTES):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive or None")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        #: key -> (version, obj, size)
        self._entries: "OrderedDict[Tuple[str, str], Tuple[Any, Any, int]]" \
            = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruption_retries = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently charged to cached bundles."""
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def cached_keys(self):
        """Cached ``(identity, blob)`` keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def get(
        self,
        backend: StorageBackend,
        name: str,
        loader: Callable[[], Tuple[Any, int]],
    ) -> Any:
        """The object cached for blob ``name`` of ``backend``, loading
        (and caching) it when absent or stale.

        ``loader`` returns ``(object, charged_bytes)``.  The version
        stamp is taken *before* the load, so a write racing the load can
        only make the entry stale-keyed (it will miss next time), never
        let stale content impersonate fresh.

        A loader that raises :class:`StoreCorruptedError` is retried
        once (``corruption_retries`` counts them): a checksum failure
        can be a torn read racing an atomic replace, and the second
        attempt observes the settled blob.  Persistent corruption
        propagates the typed error to the caller.
        """
        key = (backend_identity(backend), name)
        version = blob_version(backend, name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if version is not None and entry[0] == version:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry[1]
                self._drop(key)
            self.misses += 1
        try:
            obj, size = loader()
        except StoreCorruptedError:
            self.corruption_retries += 1
            version = blob_version(backend, name)  # re-stamp: may be mid-save
            obj, size = loader()
        if version is None:
            return obj  # unversionable: serve fresh, never cache
        size = int(size)
        if self.budget_bytes is not None and size > self.budget_bytes:
            return obj
        with self._lock:
            self._drop(key)
            self._entries[key] = (version, obj, size)
            self._used_bytes += size
            while (self.budget_bytes is not None
                   and self._used_bytes > self.budget_bytes
                   and self._entries):
                _, (_, _, evicted) = self._entries.popitem(last=False)
                self._used_bytes -= evicted
                self.evictions += 1
        return obj

    # ------------------------------------------------------------------
    def invalidate(self, backend: StorageBackend, name: str) -> None:
        """Drop the entry for one blob (absent entries are a no-op)."""
        key = (backend_identity(backend), name)
        with self._lock:
            self._drop(key)

    def invalidate_backend(self, backend: StorageBackend) -> None:
        """Drop every entry belonging to ``backend``'s identity (the
        whole-container hook behind sharded ``save`` and stale-blob
        cleanup)."""
        identity = backend_identity(backend)
        with self._lock:
            for key in [k for k in self._entries if k[0] == identity]:
                self._drop(key)

    def clear(self) -> None:
        """Drop everything (tests, memory-pressure escape hatch)."""
        with self._lock:
            self._entries.clear()
            self._used_bytes = 0

    def _drop(self, key) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_bytes -= entry[2]

    def __repr__(self) -> str:
        budget = ("unbounded" if self.budget_bytes is None
                  else f"{self.budget_bytes}B")
        return (f"BlobCache(budget={budget}, used={self._used_bytes}B, "
                f"entries={len(self._entries)}, hits={self.hits}, "
                f"misses={self.misses})")


_payload_cache = BlobCache()


def payload_cache() -> BlobCache:
    """The process-wide payload cache behind ``repro.open``."""
    return _payload_cache


def configure_payload_cache(budget_bytes: Optional[int]) -> BlobCache:
    """Resize the process-wide cache budget (``None`` = unbounded).

    Existing entries are kept but immediately subjected to the new
    budget; returns the cache for chaining.
    """
    cache = _payload_cache
    if budget_bytes is not None and budget_bytes <= 0:
        raise ValueError("budget_bytes must be positive or None")
    with cache._lock:
        cache.budget_bytes = budget_bytes
        while (cache.budget_bytes is not None
               and cache._used_bytes > cache.budget_bytes
               and cache._entries):
            _, (_, _, evicted) = cache._entries.popitem(last=False)
            cache._used_bytes -= evicted
            cache.evictions += 1
    return cache
