"""HTTP(S) object-store backends: range reads + a local hydration cache.

Two backends turn any HTTP server that supports ``Range`` requests (any
object store, any static file server) into a read-only
:class:`~repro.storage.backends.StorageBackend`:

- :class:`HttpBackend` (``http://`` / ``https://``) — stdlib
  ``urllib`` transport.  ``read_bytes`` is one GET; ``read_range`` is a
  GET with a ``Range:`` header (a 200 from a server that ignores ranges
  degrades gracefully to a slice); ``exists`` / ``size`` /
  ``blob_version`` are HEADs, with ETag / ``Last-Modified`` as the
  freshness stamp the :class:`~repro.storage.blob_cache.BlobCache`
  keys on.  ``read_view`` sniffs the zero-copy container index through
  a :class:`~repro.storage.hydration.RangeReader` and assembles the
  blob from coalesced ranges — the hydration path that lets a sharded
  open fetch a shard's bytes only when a batch routes into it.

- :class:`CachedHttpBackend` (``cached+http://`` / ``cached+https://``)
  — a content-version-keyed disk cache tier in front of the HTTP
  backend.  A hit revalidates with one HEAD and then mmaps the local
  file (pure local I/O — a warm reopen downloads nothing); a miss
  fetches through the inner backend, lands the blob atomically in the
  cache directory, and serves the mmap.  The cache lives under a byte
  budget (:func:`configure_hydration_cache`), evicting least-recently
  used files.

Both are **read-only**: ``write_bytes`` / ``delete`` raise
``PermissionError``.  404s map to the typed
:class:`~repro.resilience.errors.StoreNotFoundError` naming blob and
URL; every other HTTP/socket failure stays an ``OSError`` so the
:class:`~repro.resilience.backend.ResilientBackend` wrapper (applied by
``backend_for_url``) retries it under the standard policy and breaker.

Observability: every instance accumulates ``remote_requests``,
``range_requests`` and ``hydrated_bytes`` (bytes that actually crossed
the network) into a :class:`~repro.storage.stats.StoreStats` sink;
``bind_stats`` rebinds the sink (carrying counts forward) so a store
open threads its own stats object down into the transport.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import json
import tempfile
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, List, Optional

from ..resilience.errors import StoreNotFoundError
from .hydration import RangeReader
from .stats import StoreStats

__all__ = ["HttpBackend", "CachedHttpBackend", "configure_hydration_cache",
           "hydration_cache_root", "DEFAULT_TIMEOUT_S"]

#: Per-request socket timeout (connect + read) for the HTTP transport.
DEFAULT_TIMEOUT_S = 10.0

#: Default byte budget of the local hydration cache tier.
_DEFAULT_CACHE_BUDGET = 1 << 30

_cache_config: Dict[str, object] = {"root": None,
                                    "budget_bytes": _DEFAULT_CACHE_BUDGET}


def hydration_cache_root() -> str:
    """Directory the ``cached+http`` tier stores blobs under."""
    root = _cache_config["root"]
    if root is None:
        root = os.path.join(tempfile.gettempdir(), "repro-hydration-cache")
    return str(root)


def configure_hydration_cache(root: Optional[str] = None,
                              budget_bytes: Optional[int] = None,
                              ) -> Dict[str, object]:
    """Set the hydration cache directory and/or byte budget.

    Affects ``cached+http`` backends constructed *after* the call (the
    usual shape: configure once at process start, before any open).
    Returns the effective configuration.
    """
    if root is not None:
        _cache_config["root"] = root
    if budget_bytes is not None:
        _cache_config["budget_bytes"] = int(budget_bytes)
    return {"root": hydration_cache_root(),
            "budget_bytes": _cache_config["budget_bytes"]}


class HttpBackend:
    """Read-only storage backend over HTTP(S) range requests."""

    scheme = "http"
    #: Marks the backend as network-backed: loaders switch to lazy
    #: hydration and force read-only opens when they see this.
    remote = True
    writable = False

    def __init__(self, base_url: str, *,
                 timeout: float = DEFAULT_TIMEOUT_S,
                 stats: Optional[StoreStats] = None):
        if "://" not in base_url:
            raise ValueError(f"not an http(s) URL: {base_url!r}")
        self.base_url = base_url.rstrip("/")
        parsed = urllib.parse.urlsplit(self.base_url)
        if not parsed.netloc:
            raise ValueError(f"http URL needs a host: {base_url!r}")
        self.timeout = timeout
        self.stats = stats if stats is not None else StoreStats()

    @property
    def url(self) -> str:
        return self.base_url

    def bind_stats(self, stats: Optional[StoreStats]) -> None:
        """Redirect counters into ``stats``, carrying totals forward."""
        if stats is None or stats is self.stats:
            return
        for name, value in self.stats.counters.items():
            stats.bump(name, value)
        self.stats = stats

    # -- transport -------------------------------------------------------
    def _url_for(self, name: str) -> str:
        return f"{self.base_url}/{urllib.parse.quote(name, safe='')}"

    def _open(self, name: str, method: str = "GET",
              headers: Optional[Dict[str, str]] = None):
        request = urllib.request.Request(self._url_for(name), method=method,
                                         headers=headers or {})
        self.stats.bump("remote_requests")
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code in (404, 410):
                raise StoreNotFoundError(
                    f"no blob named {name!r} in {self.url}") from None
            # Other statuses (5xx, 429, ...) stay HTTPError ⊂ OSError:
            # transient by default, so ResilientBackend retries them.
            raise

    # -- reads -----------------------------------------------------------
    def read_bytes(self, name: str) -> bytes:
        with self._open(name) as response:
            body = response.read()
        self.stats.bump("hydrated_bytes", len(body))
        return body

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Bytes ``[start, start+length)`` of the blob (short at EOF)."""
        if length <= 0:
            return b""
        headers = {"Range": f"bytes={start}-{start + length - 1}"}
        try:
            with self._open(name, headers=headers) as response:
                body = response.read()
                status = response.status
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 416:  # requested range entirely past EOF
                return b""
            raise
        self.stats.bump("range_requests")
        self.stats.bump("hydrated_bytes", len(body))
        if status == 200 and start:
            # Server ignored the Range header and sent the whole blob.
            return body[start:start + length]
        return body[:length]

    def read_view(self, name: str) -> memoryview:
        """Blob as a read-only buffer, assembled from coalesced ranges.

        Zero-copy containers are fetched index-first through a
        :class:`RangeReader` (head + segments + footer as a few
        coalesced requests); anything else — small JSON/pickle blobs,
        legacy payloads — is read whole.
        """
        reader = RangeReader(self, name)
        if reader.whole is not None:
            return memoryview(reader.whole)
        if reader.packed:
            return reader.fetch()
        return memoryview(self.read_bytes(name))

    # -- metadata --------------------------------------------------------
    def _head(self, name: str):
        try:
            with self._open(name, method="HEAD") as response:
                return response.headers
        except StoreNotFoundError:
            return None

    def blob_version(self, name: str):
        """(ETag, Last-Modified, Content-Length), or None when the blob
        is absent or the server stamps nothing cacheable."""
        headers = self._head(name)
        if headers is None:
            return None
        etag = headers.get("ETag")
        modified = headers.get("Last-Modified")
        length = headers.get("Content-Length")
        if etag is None and modified is None:
            return None
        return (etag, modified, length)

    def exists(self, name: str) -> bool:
        return self._head(name) is not None

    def size(self, name: str) -> Optional[int]:
        headers = self._head(name)
        if headers is None:
            return None
        length = headers.get("Content-Length")
        return int(length) if length is not None else None

    def list(self) -> List[str]:
        """Blob names from the server's JSON listing endpoint.

        The in-process :mod:`repro.testing.range_server` serves the
        container listing at the base URL; generic object stores that
        do not are still fully usable for opens (the manifest names
        every blob a loader needs), they just cannot be listed.
        """
        request = urllib.request.Request(
            self.base_url + "/", headers={"Accept": "application/json"})
        self.stats.bump("remote_requests")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                names = json.loads(response.read().decode("utf-8"))
        except (urllib.error.HTTPError, ValueError) as exc:
            raise OSError(
                f"{self.url} does not expose a blob listing: {exc}") from exc
        if not isinstance(names, list):
            raise OSError(f"{self.url} listing is not a JSON array")
        return sorted(str(name) for name in names)

    # -- writes: refused -------------------------------------------------
    def write_bytes(self, name: str, payload) -> int:
        raise PermissionError(
            f"http backends are read-only; cannot write {name!r} "
            f"to {self.url}")

    def delete(self, name: str) -> None:
        raise PermissionError(
            f"http backends are read-only; cannot delete {name!r} "
            f"from {self.url}")

    def __repr__(self) -> str:
        return f"HttpBackend({self.base_url!r})"


class CachedHttpBackend:
    """Disk cache tier over a remote backend: warm reads are local mmap.

    ``inner`` is any remote backend exposing ``read_view`` /
    ``blob_version`` (in practice the :class:`ResilientBackend`-wrapped
    :class:`HttpBackend` that ``backend_for_url`` builds).  Cache files
    are keyed by ``(inner URL, blob name, content version)``, so a
    re-published blob naturally misses to a fresh file and the stale
    one ages out of the budget.
    """

    remote = True
    writable = False

    def __init__(self, inner, *,
                 cache_root: Optional[str] = None,
                 budget_bytes: Optional[int] = None):
        self.inner = inner
        self.cache_root = cache_root if cache_root is not None \
            else hydration_cache_root()
        self.budget_bytes = int(budget_bytes) if budget_bytes is not None \
            else int(_cache_config["budget_bytes"])
        os.makedirs(self.cache_root, exist_ok=True)
        self._stats = getattr(inner, "stats", None) or StoreStats()

    @property
    def scheme(self) -> str:
        return f"cached+{getattr(self.inner, 'scheme', 'http')}"

    @property
    def url(self) -> str:
        return f"cached+{getattr(self.inner, 'url', repr(self.inner))}"

    @property
    def stats(self) -> StoreStats:
        return self._stats

    def bind_stats(self, stats: Optional[StoreStats]) -> None:
        if stats is None or stats is self._stats:
            return
        binder = getattr(self.inner, "bind_stats", None)
        if binder is not None:
            binder(stats)
        else:
            for name, value in self._stats.counters.items():
                stats.bump(name, value)
        self._stats = stats

    # -- cache mechanics -------------------------------------------------
    def _cache_path(self, name: str, version) -> str:
        inner_url = getattr(self.inner, "url", repr(self.inner))
        digest = hashlib.sha256(
            f"{inner_url}|{name}|{version!r}".encode("utf-8")).hexdigest()
        return os.path.join(self.cache_root, digest + ".blob")

    @staticmethod
    def _mmap_view(path: str) -> memoryview:
        with open(path, "rb") as handle:
            if os.fstat(handle.fileno()).st_size == 0:
                return memoryview(b"")
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return memoryview(mapped)

    def _store(self, path: str, payload) -> None:
        fd, tmp_path = tempfile.mkstemp(suffix=".tmp", dir=self.cache_root)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._evict()

    def _evict(self) -> None:
        """Drop least-recently-touched cache files over the budget."""
        entries = []
        total = 0
        try:
            names = os.listdir(self.cache_root)
        except OSError:
            return
        for fname in names:
            if not fname.endswith(".blob"):
                continue
            path = os.path.join(self.cache_root, fname)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        entries.sort()
        for _, size, path in entries:
            if total <= self.budget_bytes:
                break
            try:
                os.remove(path)
                self._stats.bump("cache_evictions")
            except OSError:
                continue
            total -= size

    # -- reads -----------------------------------------------------------
    def read_view(self, name: str) -> memoryview:
        version = self.inner.blob_version(name)
        if version is None:
            # Unversionable (or absent — the fetch will say which):
            # nothing safe to key a cache file on.
            return self.inner.read_view(name)
        path = self._cache_path(name, version)
        if os.path.isfile(path):
            self._stats.bump("cache_hits")
            try:
                os.utime(path)  # LRU touch
            except OSError:
                pass
            return self._mmap_view(path)
        view = self.inner.read_view(name)
        self._stats.bump("cache_misses")
        self._store(path, bytes(view))
        return self._mmap_view(path)

    def read_bytes(self, name: str) -> bytes:
        return bytes(self.read_view(name))

    def read_range(self, name: str, start: int, length: int) -> bytes:
        view = self.read_view(name)
        return bytes(view[start:start + length])

    # -- metadata / writes -----------------------------------------------
    def blob_version(self, name: str):
        return self.inner.blob_version(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def list(self) -> List[str]:
        return self.inner.list()

    def write_bytes(self, name: str, payload) -> int:
        raise PermissionError(
            f"cached remote backends are read-only; cannot write {name!r} "
            f"to {self.url}")

    def delete(self, name: str) -> None:
        raise PermissionError(
            f"cached remote backends are read-only; cannot delete {name!r} "
            f"from {self.url}")

    def __repr__(self) -> str:
        return (f"CachedHttpBackend({self.inner!r}, "
                f"root={self.cache_root!r})")
