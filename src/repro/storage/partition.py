"""Sorted, partitioned, compressed column storage.

Both the DeepMapping auxiliary table ``T_aux`` and the array-based baselines
(AB / ABC-*) store tuples the same way (paper Sec. IV-B1 and V-A3):

1. rows are sorted by key and split into fixed-size partitions,
2. each partition is serialized (optionally dictionary-encoded first) and
   compressed with a byte codec,
3. partitions live on disk and are faulted into an LRU
   :class:`~repro.storage.buffer_pool.BufferPool` on access,
4. a lookup locates the partition by binary search over partition boundaries,
   decompresses it (at most once per query batch — queries are sorted), and
   binary-searches the key inside.

:class:`SortedPartitionStore` implements that machinery once so the auxiliary
table and the baselines share identical I/O behaviour.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..resilience.errors import StoreCorruptedError
from .buffer_pool import BufferPool
from .codecs import Codec, get_codec
from .disk import DiskStore
from .serializer import (
    deserialize_block,
    dictionary_decode,
    dictionary_encode,
    serialize_block,
)
from .stats import StoreStats

__all__ = ["PartitionMeta", "SortedPartitionStore"]


@dataclass(frozen=True)
class PartitionMeta:
    """Summary of one stored partition."""

    name: str
    first_key: int
    last_key: int
    n_rows: int
    stored_bytes: int


class SortedPartitionStore:
    """Key-sorted columnar rows in compressed disk partitions.

    Parameters
    ----------
    codec:
        Byte codec (name or instance) applied to each serialized partition.
    target_partition_bytes:
        Desired *uncompressed serialized* size per partition; the paper tunes
        this per representation (Sec. V-A5).
    dict_encode:
        Apply dictionary encoding before pickling (the paper's ABC-D).
    disk / pool / stats:
        Substrate components; private ones are created when omitted.
    name_prefix:
        Blob-name prefix, letting several stores share one directory.
    """

    def __init__(
        self,
        codec: "Codec | str" = "none",
        target_partition_bytes: int = 128 * 1024,
        dict_encode: bool = False,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
        name_prefix: str = "part",
    ):
        if target_partition_bytes <= 0:
            raise ValueError("target_partition_bytes must be positive")
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.target_partition_bytes = int(target_partition_bytes)
        self.dict_encode = bool(dict_encode)
        self.stats = stats if stats is not None else StoreStats()
        self.disk = disk if disk is not None else DiskStore(stats=self.stats)
        self.pool = pool if pool is not None else BufferPool(stats=self.stats)
        self.name_prefix = name_prefix
        self._metas: List[PartitionMeta] = []
        self._first_keys = np.empty(0, dtype=np.int64)
        self._last_keys = np.empty(0, dtype=np.int64)
        self._columns: Tuple[str, ...] = ()
        self._dtypes: Dict[str, np.dtype] = {}
        self._n_rows = 0

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, keys: np.ndarray, columns: Dict[str, np.ndarray]) -> None:
        """(Re)build all partitions from parallel arrays.

        ``keys`` must be int64-compatible and *unique*; rows are sorted here,
        so callers may pass unsorted data.
        """
        keys = np.asarray(keys, dtype=np.int64)
        for name, col in columns.items():
            if len(col) != keys.size:
                raise ValueError(
                    f"column {name!r} has {len(col)} rows, expected {keys.size}"
                )
        if keys.size != np.unique(keys).size:
            raise ValueError("keys must be unique")

        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        columns = {name: np.asarray(col)[order] for name, col in columns.items()}

        # _drop_existing_blobs invalidates this store's own pool entries;
        # a whole-pool clear() would also evict co-hosted stores (the
        # sharded store shares one pool across shards).
        self._drop_existing_blobs()
        self._metas = []
        self._columns = tuple(columns)
        self._dtypes = {name: np.asarray(col).dtype for name, col in columns.items()}
        self._n_rows = int(keys.size)

        if keys.size == 0:
            self._refresh_boundaries()
            return

        rows_per_partition = self._rows_per_partition(keys, columns)
        for pid, start in enumerate(range(0, keys.size, rows_per_partition)):
            stop = min(start + rows_per_partition, keys.size)
            self._write_partition(pid, keys[start:stop],
                                  {n: c[start:stop] for n, c in columns.items()})
        self._refresh_boundaries()

    def _rows_per_partition(self, keys: np.ndarray, columns: Dict[str, np.ndarray]) -> int:
        """Pick a row count whose serialized size approximates the target."""
        probe = min(keys.size, 2048)
        sample = {n: c[:probe] for n, c in columns.items()}
        sample["__keys__"] = keys[:probe]
        per_row = max(1.0, len(serialize_block(sample)) / probe)
        return max(1, int(self.target_partition_bytes / per_row))

    def _write_partition(self, pid: int, keys: np.ndarray,
                         columns: Dict[str, np.ndarray]) -> None:
        block: Dict[str, object] = {"keys": keys}
        if self.dict_encode:
            block["columns"] = dictionary_encode(columns)
        else:
            block["columns"] = dict(columns)
        payload = self.codec.compress(serialize_block(block))
        name = f"{self.name_prefix}-{pid:06d}"
        stored = self.disk.write(name, payload)
        self._metas.append(
            PartitionMeta(
                name=name,
                first_key=int(keys[0]),
                last_key=int(keys[-1]),
                n_rows=int(keys.size),
                stored_bytes=stored,
            )
        )

    def _refresh_boundaries(self) -> None:
        self._first_keys = np.array([m.first_key for m in self._metas], dtype=np.int64)
        self._last_keys = np.array([m.last_key for m in self._metas], dtype=np.int64)

    def _drop_existing_blobs(self) -> None:
        for meta in self._metas:
            self.disk.delete(meta.name)
            self.pool.invalidate(meta.name)

    def drop_storage(self) -> None:
        """Delete every partition blob and purge them from the pool.

        For callers retiring this store while a successor reuses the same
        pool and name prefix (rebuilds): stale cached blocks must not be
        served under the successor's partition names.
        """
        self._drop_existing_blobs()
        self._metas = []
        self._n_rows = 0
        self._refresh_boundaries()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Value-column names held by this store."""
        return self._columns

    @property
    def partitions(self) -> List[PartitionMeta]:
        """Metadata for every stored partition, in key order."""
        return list(self._metas)

    def stored_bytes(self) -> int:
        """Total compressed bytes across partitions (offline footprint)."""
        return sum(meta.stored_bytes for meta in self._metas)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def locate(self, keys: np.ndarray) -> np.ndarray:
        """Partition ordinal for each query key (-1 when outside any range)."""
        keys = np.asarray(keys, dtype=np.int64)
        with self.stats.timing("locate"):
            idx = np.searchsorted(self._first_keys, keys, side="right") - 1
            valid = idx >= 0
            in_range = np.zeros(keys.size, dtype=bool)
            in_range[valid] = keys[valid] <= self._last_keys[idx[valid]]
            idx[~in_range] = -1
        return idx

    def load_partition(self, pid: int) -> Dict[str, np.ndarray]:
        """Fetch partition ``pid`` through the buffer pool, decompressing on miss.

        Undecompressable / unpicklable partition bytes surface as a typed
        :class:`~repro.resilience.errors.StoreCorruptedError` naming the
        blob; the pool retries the load once (torn-read healing) before
        letting it propagate.
        """
        meta = self._metas[pid]

        def loader():
            payload = self.disk.read(meta.name)
            try:
                with self.stats.timing("decompress"):
                    raw = self.codec.decompress(payload)
                with self.stats.timing("deserialize"):
                    block = deserialize_block(raw)
            except StoreCorruptedError:
                raise
            except (zlib.error, pickle.UnpicklingError, EOFError,
                    ValueError, OSError) as exc:
                raise StoreCorruptedError(
                    f"partition blob {meta.name!r} is corrupt "
                    f"({type(exc).__name__}: {exc})") from exc
            columns = block["columns"]
            if self.dict_encode:
                columns = dictionary_decode(columns)
            resident = {"keys": block["keys"], **columns}
            size = sum(np.asarray(v).nbytes for v in resident.values())
            return resident, size

        return self.pool.get(meta.name, loader)

    def lookup_batch(self, keys) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Batch point lookup.

        Returns ``(found, values)`` where ``found`` is a boolean array
        aligned with ``keys`` and ``values`` maps each column to an array
        whose rows are only meaningful where ``found`` is True.

        Query keys are processed in sorted order so each partition is
        faulted in and decompressed at most once per batch (paper
        Sec. IV-B2).  Batches that *arrive* sorted — one vectorized
        monotonicity check — skip the argsort entirely; callers that
        already hold the keys in sorted order (the staged lookup plan,
        the sharded route stage) ride this fast path and never pay a
        second sort.
        """
        keys = np.asarray(keys, dtype=np.int64)
        found = np.zeros(keys.size, dtype=bool)
        values = {name: self._empty_column(name, keys.size) for name in self._columns}
        if keys.size == 0 or not self._metas:
            return found, values

        if keys.size < 2 or np.all(keys[1:] >= keys[:-1]):
            order = None  # already sorted: identity order
            sorted_keys = keys
        else:
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
        pids = self.locate(sorted_keys)

        # ``pids`` is non-decreasing apart from -1 markers (keys are
        # sorted and partitions are disjoint ascending ranges), so equal
        # pids form contiguous runs — iterate runs instead of scanning a
        # ``pids == pid`` mask per partition.
        boundaries = np.flatnonzero(pids[1:] != pids[:-1]) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [pids.size]])
        for start, stop in zip(starts, stops):
            pid = int(pids[start])
            if pid < 0:
                continue
            block = self.load_partition(pid)
            part_keys = block["keys"]
            run = sorted_keys[start:stop]
            with self.stats.timing("search"):
                pos = np.searchsorted(part_keys, run)
                pos = np.minimum(pos, part_keys.size - 1)
                hit = part_keys[pos] == run
            if order is None:
                rows = np.flatnonzero(hit) + start
            else:
                rows = order[start:stop][hit]
            found[rows] = True
            for name in self._columns:
                values[name][rows] = block[name][pos[hit]]
        return found, values

    def scan(self) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Materialize every row (used by compaction and tests)."""
        if not self._metas:
            return np.empty(0, dtype=np.int64), {
                name: self._empty_column(name, 0) for name in self._columns
            }
        keys_parts = []
        column_parts: Dict[str, list] = {name: [] for name in self._columns}
        for pid in range(len(self._metas)):
            block = self.load_partition(pid)
            keys_parts.append(block["keys"])
            for name in self._columns:
                column_parts[name].append(block[name])
        keys = np.concatenate(keys_parts)
        columns = {name: np.concatenate(parts) for name, parts in column_parts.items()}
        return keys, columns

    # ------------------------------------------------------------------
    def _empty_column(self, name: str, size: int) -> np.ndarray:
        dtype = self._dtypes.get(name, np.dtype(object))
        if dtype == object:
            return np.full(size, None, dtype=object)
        return np.zeros(size, dtype=dtype)

    def __repr__(self) -> str:
        return (
            f"SortedPartitionStore(rows={self._n_rows}, "
            f"partitions={len(self._metas)}, codec={self.codec.name}, "
            f"bytes={self.stored_bytes()})"
        )
