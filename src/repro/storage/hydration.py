"""Lazy shard hydration over range-read backends.

A sharded store's manifest routes keys (and prunes misses) without
touching a single shard payload — so a reader over remote storage
should not *download* a shard until a batch actually routes keys into
it.  This module supplies the two pieces that make that work:

- :class:`RangeReader` — understands the zero-copy container layout
  (``storage/zerocopy.py``): one small fixed-prefix fetch reads the
  magic, header, and slot table, after which the head pickle, the
  64-byte-aligned buffer segments, and the CRC footer are all known
  byte ranges.  :meth:`RangeReader.fetch` pulls them as **coalesced**
  range requests (adjacent/overlapping ranges within
  :data:`COALESCE_GAP` merge into one request) and reassembles a
  container image that :func:`~repro.storage.zerocopy.unpack` loads —
  checksums intact — exactly as if it had been read whole.

- :class:`LazyShard` — a deferred-load proxy standing in for a
  :class:`~repro.core.deep_mapping.DeepMapping` shard.  Construction
  costs nothing; the first attribute touch (a routed lookup segment,
  a dtype-promotion probe, a save) runs the loader exactly once under
  a lock.  ``len()`` answers from the manifest's row count so the
  store facade (``__len__`` / ``repr`` / load-time bookkeeping) never
  forces a download.  Contended hydration bumps a ``hydration_waits``
  counter — the observable cost of two batches racing to fault in the
  same shard (the loader itself dedupes through ``BlobCache``'s
  per-key fault locking, so the bytes are only fetched once).

The layer is backend-agnostic: anything exposing
``read_range(name, start, length) -> bytes`` can be hydrated from —
the HTTP backend (``storage/remote.py``), but also the local backends
(useful for tests and for any future object-store transport).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple

from .zerocopy import MAGIC, MAGIC_V1, _ALIGN, _CRC, _HEADER, _SLOT, _aligned

__all__ = ["RangeReader", "LazyShard", "SNIFF_BYTES", "COALESCE_GAP"]

#: Bytes of the fixed-prefix sniff: covers magic + header + 254 slot
#: entries — more buffers than any shard payload in this repo ships —
#: so one request usually reads the whole index.  Blobs smaller than
#: this arrive whole in the sniff and need no second request.
SNIFF_BYTES = 4096

#: Two wanted ranges closer than this are fetched as one request (the
#: gap bytes ride along).  Matches the container's 64-byte alignment
#: padding scale: issuing a second HTTP round-trip to skip a sub-page
#: gap always loses.
COALESCE_GAP = 4096


class RangeReader:
    """Assemble a zero-copy container from byte-range reads.

    Parameters
    ----------
    backend:
        Anything with ``read_range(name, start, length) -> bytes``
        (short reads at end-of-blob are fine and expected).
    name:
        Blob name inside the backend.
    prefix:
        Optional already-fetched leading bytes (the caller may have
        sniffed the blob); saves re-reading the index.

    After construction, :attr:`packed` says whether the blob is a
    recognized container.  When it is, :attr:`total_size`,
    :attr:`slots` (absolute ``(offset, length)`` per buffer segment)
    and the index/head/footer extents are all known without any
    further requests, and :meth:`fetch` materializes the container.
    ``ranges_fetched`` / ``bytes_fetched`` account every request made
    through this reader (including the sniff).
    """

    def __init__(self, backend, name: str,
                 prefix: Optional[bytes] = None,
                 sniff_bytes: int = SNIFF_BYTES):
        self.backend = backend
        self.name = name
        self.ranges_fetched: List[Tuple[int, int]] = []
        self.bytes_fetched = 0
        if prefix is None:
            prefix = self._read(0, sniff_bytes)
        self._prefix = bytes(prefix)
        self._sniff_bytes = sniff_bytes
        #: Whole blob already in hand (it was smaller than the sniff).
        self.whole: Optional[bytes] = (
            self._prefix if len(self._prefix) < sniff_bytes else None)
        self.packed = False
        self.version = 0
        self.slots: List[Tuple[int, int]] = []
        self.head_len = 0
        self.index_size = 0
        self.data_end = 0
        self.footer_size = 0
        self.total_size = len(self._prefix)
        self._parse()

    # -- accounting-aware transport ------------------------------------
    def _read(self, start: int, length: int) -> bytes:
        data = self.backend.read_range(self.name, start, length)
        self.ranges_fetched.append((start, len(data)))
        self.bytes_fetched += len(data)
        return data

    # -- index parsing -------------------------------------------------
    def _parse(self) -> None:
        prefix = self._prefix
        if len(prefix) < len(MAGIC) + _HEADER.size:
            return
        lead = prefix[:len(MAGIC)]
        if lead == MAGIC:
            self.version = 2
        elif lead == MAGIC_V1:
            self.version = 1
        else:
            return
        n_buffers, head_len = _HEADER.unpack_from(prefix, len(MAGIC))
        index_size = len(MAGIC) + _HEADER.size + _SLOT.size * n_buffers
        if self.whole is None and len(prefix) < index_size:
            # Giant slot table (hundreds of buffers): one follow-up
            # request completes the index.
            prefix = prefix + self._read(len(prefix),
                                         index_size - len(prefix))
            self._prefix = prefix
        slots = []
        pos = len(MAGIC) + _HEADER.size
        for _ in range(n_buffers):
            slots.append(_SLOT.unpack_from(prefix, pos))
            pos += _SLOT.size
        if slots:
            last_off, last_len = slots[-1]
            data_end = _aligned(last_off + last_len)
        else:
            data_end = index_size + head_len
        self.packed = True
        self.slots = slots
        self.head_len = int(head_len)
        self.index_size = index_size
        self.data_end = data_end
        self.footer_size = _CRC.size * (n_buffers + 1) if self.version == 2 \
            else 0
        self.total_size = data_end + self.footer_size
        if self.whole is not None:
            # The sniff already returned every byte; trust the parse but
            # serve from what we hold.
            self.total_size = len(self.whole)

    # -- range planning ------------------------------------------------
    def _wanted(self, segments: Optional[Sequence[int]]) -> List[
            Tuple[int, int]]:
        """Absolute (start, end) extents needed beyond the prefix."""
        wanted = [(self.index_size, self.index_size + self.head_len)]
        chosen = range(len(self.slots)) if segments is None else segments
        for i in chosen:
            off, length = self.slots[i]
            wanted.append((off, off + length))
        if self.footer_size:
            wanted.append((self.data_end, self.data_end + self.footer_size))
        have = len(self._prefix)
        clipped = [(max(start, have), min(end, self.total_size))
                   for start, end in wanted]
        return sorted((s, e) for s, e in clipped if e > s)

    @staticmethod
    def coalesce(extents: List[Tuple[int, int]],
                 gap: int = COALESCE_GAP) -> List[Tuple[int, int]]:
        """Merge sorted (start, end) extents within ``gap`` bytes."""
        merged: List[Tuple[int, int]] = []
        for start, end in extents:
            if merged and start - merged[-1][1] <= gap:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    # -- assembly --------------------------------------------------------
    def fetch(self, segments: Optional[Sequence[int]] = None,
              gap: int = COALESCE_GAP) -> memoryview:
        """Materialize the container image as a memoryview.

        ``segments`` restricts which buffer slots are pulled (default:
        all).  Unfetched segments read as zeros — only useful to
        callers that unpack with ``verify=False`` and touch a known
        subset; the hydration path always fetches everything, so the
        CRC footer verifies as usual.  The inter-segment alignment
        padding a partial plan skips is never checksummed, so sparse
        fetches stay byte-exact for the ranges they do cover.
        """
        if self.whole is not None:
            return memoryview(self.whole)
        if not self.packed:
            raise ValueError(
                f"blob {self.name!r} is not a zero-copy container; "
                "read it whole instead")
        out = bytearray(self.total_size)
        have = min(len(self._prefix), self.total_size)
        out[:have] = self._prefix[:have]
        for start, end in self.coalesce(self._wanted(segments), gap):
            data = self._read(start, end - start)
            out[start:start + len(data)] = data
        return memoryview(out)


class LazyShard:
    """Deferred-load stand-in for a shard: hydrates on first touch.

    ``loader`` runs at most once (thread-safe); every attribute access
    forwards to the hydrated target.  ``len()`` is answered from the
    manifest row count until hydration so store-level bookkeeping
    (``__len__``, ``repr``, row-count reports) stays download-free.
    """

    __slots__ = ("_loader", "_lock", "_target", "_stats", "_n_rows",
                 "_label")

    def __init__(self, loader: Callable[[], object], *,
                 n_rows: int = 0, stats=None, label: str = ""):
        self._loader = loader
        self._lock = threading.Lock()
        self._target = None
        self._stats = stats
        self._n_rows = int(n_rows)
        self._label = label

    @property
    def hydrated(self) -> bool:
        """True once the underlying shard has been loaded."""
        return self._target is not None

    def hydrate(self):
        """Load (once) and return the underlying shard."""
        target = self._target
        if target is not None:
            return target
        stats = self._stats
        if not self._lock.acquire(blocking=False):
            # Another thread is mid-hydration: the wait is the price of
            # contention, and the counter is how it shows up in stats.
            if stats is not None:
                stats.bump("hydration_waits")
            self._lock.acquire()
        try:
            if self._target is None:
                if stats is not None:
                    with stats.timing("hydrate"):
                        self._target = self._loader()
                    stats.bump("hydrated_shards")
                else:
                    self._target = self._loader()
            return self._target
        finally:
            self._lock.release()

    def __getattr__(self, name):
        return getattr(self.hydrate(), name)

    def __len__(self) -> int:
        target = self._target
        return len(target) if target is not None else self._n_rows

    def __repr__(self) -> str:
        state = "hydrated" if self.hydrated else f"cold, {self._n_rows} rows"
        return f"LazyShard({self._label or '?'}: {state})"
