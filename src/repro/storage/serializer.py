"""Block (de)serialization and dictionary encoding.

A *block* is the unit that partitions serialize: a ``dict`` mapping column
names to numpy arrays (plus small metadata values).  The paper serializes
partitions with ``pickle`` backed by C, which we mirror with
``pickle.HIGHEST_PROTOCOL``.

Dictionary encoding (the paper's ``ABC-D`` baseline and Redshift-style byte
dictionary) is implemented here as a columnar transform applied before
pickling: each column is replaced by a compact integer code array plus its
vocabulary.  High-cardinality integer columns are stored via their minimal
dtype instead, which is what production dictionary encoders fall back to.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict

import numpy as np

__all__ = [
    "serialize_block",
    "deserialize_block",
    "dictionary_encode",
    "dictionary_decode",
    "minimal_int_dtype",
    "serialized_size",
]

#: Columns whose distinct-value count exceeds this fraction of the row count
#: are not dictionary-encoded (the vocabulary would dominate the codes).
_DICT_CARDINALITY_FRACTION = 0.5


def serialize_block(block: Any) -> bytes:
    """Serialize an arbitrary picklable block to bytes."""
    return pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_block(payload: bytes) -> Any:
    """Inverse of :func:`serialize_block`."""
    return pickle.loads(payload)


def serialized_size(block: Any) -> int:
    """Size in bytes of the pickled representation of ``block``."""
    return len(serialize_block(block))


def minimal_int_dtype(max_value: int) -> np.dtype:
    """Smallest unsigned dtype able to hold values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    for dtype in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


def dictionary_encode(columns: Dict[str, np.ndarray]) -> Dict[str, Any]:
    """Dictionary-encode a dict of columns.

    Returns an encoded block of the shape::

        {"__dict_encoded__": True,
         "columns": {name: {"codes": uint-array, "vocab": array} | {"raw": array}}}

    Columns where encoding would not pay off keep their raw array (tagged
    ``"raw"``) so the transform is always safe to apply.
    """
    encoded: Dict[str, Any] = {"__dict_encoded__": True, "columns": {}}
    for name, values in columns.items():
        arr = np.asarray(values)
        vocab, codes = np.unique(arr, return_inverse=True)
        if arr.size and len(vocab) <= max(1, int(arr.size * _DICT_CARDINALITY_FRACTION)):
            codes = codes.astype(minimal_int_dtype(max(len(vocab) - 1, 0)))
            encoded["columns"][name] = {"codes": codes, "vocab": vocab}
        else:
            encoded["columns"][name] = {"raw": arr}
    return encoded


def dictionary_decode(encoded: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Invert :func:`dictionary_encode`, restoring the original columns."""
    if not encoded.get("__dict_encoded__"):
        raise ValueError("block is not dictionary-encoded")
    columns: Dict[str, np.ndarray] = {}
    for name, payload in encoded["columns"].items():
        if "raw" in payload:
            columns[name] = payload["raw"]
        else:
            columns[name] = payload["vocab"][payload["codes"]]
    return columns
