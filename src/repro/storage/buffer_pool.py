"""LRU buffer pool with a byte budget.

This is the reproduction's stand-in for the paper's three hardware tiers
(AWS t2-medium / g4dn.xlarge / A10 server).  What distinguishes those tiers
for the evaluated workloads is whether a representation fits the available
memory pool; here the pool budget is an explicit number of bytes.  When a
store's partitions exceed the budget, the pool evicts the least recently used
partition, and the next access pays disk I/O + decompression again — exactly
the cost the paper's Table I measures and DeepMapping avoids.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

from .stats import StoreStats

__all__ = ["BufferPool", "MemoryBudgetError"]


class MemoryBudgetError(MemoryError):
    """Raised when a single object cannot fit the pool even when empty.

    Stores that must materialize such objects (e.g. the DeepSqueeze decoder
    output) surface this as the paper's "failed" / OOM entries.
    """


class BufferPool:
    """Byte-budgeted LRU cache of deserialized partitions.

    The pool is thread-safe: the sharded store fans per-shard lookups out
    on a thread pool while all shards share one pool, so bookkeeping is
    guarded by a lock.  Loaders run *outside* the lock (they do disk I/O
    and decompression); two threads missing on the same key may both
    load — the first insert wins and the loser returns its private copy
    uncached.  A load that straddles an ``invalidate()``/``clear()`` is
    likewise returned but never cached (generation check), so a rebuild
    that retires blob names cannot have stale content resurrected by an
    in-flight loader.

    Parameters
    ----------
    budget_bytes:
        Maximum total size of cached objects.  ``None`` means unbounded
        (the paper's "dataset fits memory" configurations).
    stats:
        Optional stats sink.  Counters: ``pool_hits``, ``pool_misses``,
        ``pool_evictions``.  The loader itself should record its own
        ``io`` / ``decompress`` / ``deserialize`` timers.
    strict:
        When True, an object larger than the whole budget raises
        :class:`MemoryBudgetError` instead of being passed through uncached.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        stats: Optional[StoreStats] = None,
        strict: bool = False,
    ):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive or None")
        self.budget_bytes = budget_bytes
        self.stats = stats if stats is not None else StoreStats()
        self.strict = strict
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._used_bytes = 0
        self.peak_bytes = 0
        self._lock = threading.Lock()
        # Bumped by invalidate()/clear(); a load that straddles a bump is
        # returned to its caller but never cached (it may be stale: rebuilds
        # replace blob content under reused names).
        self._generation = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key: Hashable, loader: Callable[[], Tuple[Any, int]]) -> Any:
        """Return the object cached under ``key``, loading it on a miss.

        ``loader`` must return ``(object, size_bytes)``.  On a miss the
        loaded object is inserted and LRU entries are evicted until the
        budget holds.  Objects larger than the entire budget are returned
        uncached (or raise, under ``strict``), mirroring a scan that streams
        through memory without being retainable.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.bump("pool_hits")
                return entry[0]
            self.stats.bump("pool_misses")
            generation = self._generation

        obj, size = loader()  # deliberately outside the lock (I/O-heavy)
        size = int(size)
        if self.budget_bytes is not None and size > self.budget_bytes:
            if self.strict:
                raise MemoryBudgetError(
                    f"object of {size} bytes exceeds pool budget "
                    f"of {self.budget_bytes} bytes"
                )
            return obj
        with self._lock:
            if key not in self._entries and generation == self._generation:
                self._insert(key, obj, size)
        return obj

    def put(self, key: Hashable, obj: Any, size: int) -> None:
        """Insert (or replace) an entry directly."""
        with self._lock:
            self._invalidate(key)
            if self.budget_bytes is not None and size > self.budget_bytes:
                if self.strict:
                    raise MemoryBudgetError(
                        f"object of {size} bytes exceeds pool budget "
                        f"of {self.budget_bytes} bytes"
                    )
                return
            self._insert(key, obj, int(size))

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` from the cache if present."""
        with self._lock:
            self._invalidate(key)

    def _invalidate(self, key: Hashable) -> None:
        self._generation += 1
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_bytes -= entry[1]

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self._generation += 1
            self._entries.clear()
            self._used_bytes = 0

    def cached_keys(self):
        """Keys currently cached, least recently used first."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def _insert(self, key: Hashable, obj: Any, size: int) -> None:
        self._entries[key] = (obj, size)
        self._used_bytes += size
        self._evict_to_budget()
        self.peak_bytes = max(self.peak_bytes, self._used_bytes)

    def _evict_to_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self._used_bytes > self.budget_bytes and self._entries:
            _, (_, size) = self._entries.popitem(last=False)
            self._used_bytes -= size
            self.stats.bump("pool_evictions")

    def __repr__(self) -> str:
        budget = "unbounded" if self.budget_bytes is None else f"{self.budget_bytes}B"
        return (
            f"BufferPool(budget={budget}, used={self._used_bytes}B, "
            f"entries={len(self._entries)})"
        )
