"""LRU buffer pool with a byte budget.

This is the reproduction's stand-in for the paper's three hardware tiers
(AWS t2-medium / g4dn.xlarge / A10 server).  What distinguishes those tiers
for the evaluated workloads is whether a representation fits the available
memory pool; here the pool budget is an explicit number of bytes.  When a
store's partitions exceed the budget, the pool evicts the least recently used
partition, and the next access pays disk I/O + decompression again — exactly
the cost the paper's Table I measures and DeepMapping avoids.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

from ..resilience.errors import StoreCorruptedError
from .stats import StoreStats

__all__ = ["BufferPool", "MemoryBudgetError"]


class MemoryBudgetError(MemoryError):
    """Raised when a single object cannot fit the pool even when empty.

    Stores that must materialize such objects (e.g. the DeepSqueeze decoder
    output) surface this as the paper's "failed" / OOM entries.
    """


class _Fault:
    """One in-flight load: the leader fills it, followers wait on it."""

    __slots__ = ("event", "obj", "error")

    def __init__(self):
        self.event = threading.Event()
        self.obj = None
        self.error = None


class BufferPool:
    """Byte-budgeted LRU cache of deserialized partitions.

    The pool is thread-safe: the sharded store fans per-shard lookups out
    on a thread pool while all shards share one pool, so bookkeeping is
    guarded by a lock.  Loaders run *outside* the lock (they do disk I/O
    and decompression), and faults are **deduplicated per key**: when
    several threads miss on the same partition at once, exactly one runs
    ``loader()`` while the rest wait on the in-flight fault and receive
    its object (counted under ``pool_waits``) — without this, the sharded
    fan-out decompresses the same partition once per caller (the classic
    thundering herd).  If the leading loader raises, each waiter retries
    from scratch (one of them becomes the next leader), so per-caller
    error semantics match the un-deduplicated pool.  A load that
    straddles an ``invalidate()``/``clear()`` is returned to its callers
    but never cached (generation check), so a rebuild that retires blob
    names cannot have stale content resurrected by an in-flight loader.

    Parameters
    ----------
    budget_bytes:
        Maximum total size of cached objects.  ``None`` means unbounded
        (the paper's "dataset fits memory" configurations).
    stats:
        Optional stats sink.  Counters: ``pool_hits``, ``pool_misses``,
        ``pool_waits`` (deduplicated concurrent faults) and
        ``pool_evictions``.  The loader itself should record its own
        ``io`` / ``decompress`` / ``deserialize`` timers.
    strict:
        When True, an object larger than the whole budget raises
        :class:`MemoryBudgetError` instead of being passed through uncached.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        stats: Optional[StoreStats] = None,
        strict: bool = False,
    ):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive or None")
        self.budget_bytes = budget_bytes
        self.stats = stats if stats is not None else StoreStats()
        self.strict = strict
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._used_bytes = 0
        self.peak_bytes = 0
        self._lock = threading.Lock()
        # In-flight faults, one per key: followers wait on the leader's
        # event instead of re-running the loader (see class docstring).
        self._faults: dict = {}
        # Bumped by invalidate()/clear(); a load that straddles a bump is
        # returned to its caller but never cached (it may be stale: rebuilds
        # replace blob content under reused names).
        self._generation = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key: Hashable, loader: Callable[[], Tuple[Any, int]]) -> Any:
        """Return the object cached under ``key``, loading it on a miss.

        ``loader`` must return ``(object, size_bytes)``.  On a miss the
        loaded object is inserted and LRU entries are evicted until the
        budget holds.  Concurrent misses on one key run ``loader()``
        once: the first thread leads, the rest wait and share its result
        (``pool_waits``).  Objects larger than the entire budget are
        returned uncached (or raise, under ``strict``), mirroring a scan
        that streams through memory without being retainable.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.bump("pool_hits")
                    return entry[0]
                fault = self._faults.get(key)
                if fault is None:
                    fault = _Fault()
                    self._faults[key] = fault
                    generation = self._generation
                    self.stats.bump("pool_misses")
                    break
                self.stats.bump("pool_waits")
            fault.event.wait()
            if fault.error is None:
                return fault.obj
            # The leader's loader failed; retry from scratch — this
            # follower (or another) becomes the next leader and raises
            # its own error, preserving per-caller failure semantics.

        try:
            # Deliberately outside the lock (I/O-heavy).  Corruption is
            # treated as a cache-miss-and-retry-once: a checksum failure
            # may be a torn read racing an atomic replace, and the second
            # attempt sees the settled blob.  If it fails again, the
            # typed error propagates to this leader and every waiter
            # retries per the usual fault semantics.
            try:
                obj, size = loader()
            except StoreCorruptedError:
                self.stats.bump("pool_corruption_retries")
                obj, size = loader()
            size = int(size)
            if self.budget_bytes is not None and size > self.budget_bytes \
                    and self.strict:
                raise MemoryBudgetError(
                    f"object of {size} bytes exceeds pool budget "
                    f"of {self.budget_bytes} bytes"
                )
        except BaseException as exc:
            fault.error = exc
            with self._lock:
                self._pop_fault(key, fault)
            fault.event.set()
            raise

        with self._lock:
            if (key not in self._entries and generation == self._generation
                    and (self.budget_bytes is None
                         or size <= self.budget_bytes)):
                self._insert(key, obj, size)
            self._pop_fault(key, fault)
            fault.obj = obj
            fault.event.set()
        return obj

    def _pop_fault(self, key: Hashable, fault: "_Fault") -> None:
        """Retire ``fault`` if it is still the registered one (an
        invalidation may have detached it and a successor taken the
        slot; the successor must not be evicted by the old leader)."""
        if self._faults.get(key) is fault:
            del self._faults[key]

    def put(self, key: Hashable, obj: Any, size: int) -> None:
        """Insert (or replace) an entry directly."""
        with self._lock:
            self._invalidate(key)
            if self.budget_bytes is not None and size > self.budget_bytes:
                if self.strict:
                    raise MemoryBudgetError(
                        f"object of {size} bytes exceeds pool budget "
                        f"of {self.budget_bytes} bytes"
                    )
                return
            self._insert(key, obj, int(size))

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` from the cache if present."""
        with self._lock:
            self._invalidate(key)

    def _invalidate(self, key: Hashable) -> None:
        self._generation += 1
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used_bytes -= entry[1]
        # Detach any in-flight fault: a getter arriving *after* this
        # invalidation must lead a fresh load, not adopt the retired
        # content the detached leader is still producing.  (Callers that
        # joined the fault before the invalidation get that content,
        # exactly like a pre-dedup loader that straddled the bump.)
        self._faults.pop(key, None)

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self._generation += 1
            self._entries.clear()
            self._faults.clear()
            self._used_bytes = 0

    def cached_keys(self):
        """Keys currently cached, least recently used first."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------
    def _insert(self, key: Hashable, obj: Any, size: int) -> None:
        self._entries[key] = (obj, size)
        self._used_bytes += size
        self._evict_to_budget()
        self.peak_bytes = max(self.peak_bytes, self._used_bytes)

    def _evict_to_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self._used_bytes > self.budget_bytes and self._entries:
            _, (_, size) = self._entries.popitem(last=False)
            self._used_bytes -= size
            self.stats.bump("pool_evictions")

    def __repr__(self) -> str:
        budget = "unbounded" if self.budget_bytes is None else f"{self.budget_bytes}B"
        return (
            f"BufferPool(budget={budget}, used={self._used_bytes}B, "
            f"entries={len(self._entries)})"
        )
