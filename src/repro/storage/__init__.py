"""Storage substrate: backends, bit vectors, codecs, partitions, pool, disk.

These are the building blocks under both the DeepMapping hybrid structure
and every baseline in the paper's evaluation.
"""

from . import zerocopy
from .backends import (MONOLITHIC_BLOB, URL_SCHEMES, InMemoryBackend,
                       LocalDirBackend, StorageBackend, ZipBackend,
                       backend_for_url, backend_identity, blob_version,
                       parse_url, read_blob_view, resolve_blob_url)
from .bitvector import BitVector
from .blob_cache import BlobCache, configure_payload_cache, payload_cache
from .buffer_pool import BufferPool, MemoryBudgetError
from .codecs import (
    Codec,
    GzipCodec,
    IdentityCodec,
    LzmaCodec,
    ZstdCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from .disk import DiskStore
from .hydration import LazyShard, RangeReader
from .remote import (CachedHttpBackend, HttpBackend,
                     configure_hydration_cache, hydration_cache_root)
from .partition import PartitionMeta, SortedPartitionStore
from .serializer import (
    deserialize_block,
    dictionary_decode,
    dictionary_encode,
    minimal_int_dtype,
    serialize_block,
    serialized_size,
)
from .stats import Stopwatch, StoreStats

__all__ = [
    "StorageBackend",
    "LocalDirBackend",
    "InMemoryBackend",
    "ZipBackend",
    "backend_for_url",
    "resolve_blob_url",
    "parse_url",
    "read_blob_view",
    "blob_version",
    "backend_identity",
    "URL_SCHEMES",
    "MONOLITHIC_BLOB",
    "BitVector",
    "BlobCache",
    "payload_cache",
    "configure_payload_cache",
    "BufferPool",
    "MemoryBudgetError",
    "zerocopy",
    "Codec",
    "IdentityCodec",
    "GzipCodec",
    "ZstdCodec",
    "LzmaCodec",
    "get_codec",
    "available_codecs",
    "register_codec",
    "HttpBackend",
    "CachedHttpBackend",
    "configure_hydration_cache",
    "hydration_cache_root",
    "RangeReader",
    "LazyShard",
    "DiskStore",
    "PartitionMeta",
    "SortedPartitionStore",
    "serialize_block",
    "deserialize_block",
    "dictionary_encode",
    "dictionary_decode",
    "minimal_int_dtype",
    "serialized_size",
    "Stopwatch",
    "StoreStats",
]
