"""Pluggable persistence backends: named byte blobs behind one protocol.

Every persisted artifact in this repo — a monolithic ``DeepMapping``
payload, a sharded store's manifest / config / per-shard payloads, spilled
auxiliary partitions — is ultimately a *named byte blob*.
:class:`StorageBackend` pins that down to five operations
(``read_bytes`` / ``write_bytes`` / ``list`` / ``exists`` / ``delete``)
with **atomic write semantics**: a reader concurrent with ``write_bytes``
sees either the old blob or the new one, never a torn prefix.

Three implementations ship:

- :class:`LocalDirBackend` — a flat local directory; writes go through a
  temp file + ``os.replace`` (the crash-safety idiom the shard manifest
  used to hand-roll).
- :class:`InMemoryBackend` — a process-local dict, addressable by name
  through a registry so ``mem://name`` URLs round-trip within a process.
- :class:`ZipBackend` — all blobs inside one zip archive: the
  object-store stand-in (single remote object, list/read/replace
  semantics, no partial updates).

URL scheme selects the backend: ``file://`` (or a bare path),
``mem://``, ``zip://`` — plus the remote read-only schemes ``http://``
/ ``https://`` (range-read HTTP transport wrapped in a
:class:`~repro.resilience.backend.ResilientBackend`) and
``cached+http://`` / ``cached+https://`` (same, behind a local disk
hydration cache) from :mod:`repro.storage.remote` — see
:func:`backend_for_url` and :func:`resolve_blob_url`.
"""

from __future__ import annotations

import io
import mmap
import os
import re
import tempfile
import threading
import zipfile
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

from ..resilience.errors import StoreCorruptedError, StoreNotFoundError

__all__ = [
    "StorageBackend",
    "LocalDirBackend",
    "InMemoryBackend",
    "ZipBackend",
    "URL_SCHEMES",
    "MONOLITHIC_BLOB",
    "parse_url",
    "backend_for_url",
    "resolve_blob_url",
    "read_blob_view",
    "blob_version",
    "backend_identity",
]

#: URL schemes the library accepts, in the order error messages list them.
#: The ``http`` family is read-only (see ``storage/remote.py``).
URL_SCHEMES = ("file", "mem", "zip", "http", "https",
               "cached+http", "cached+https")

#: Canonical blob name of a monolithic DeepMapping payload inside a
#: container backend (``mem://`` / ``zip://`` targets have no file name of
#: their own, so the payload lives under this fixed name).
MONOLITHIC_BLOB = "deepmapping.dm"

_URL_RE = re.compile(r"^([A-Za-z][A-Za-z0-9+.-]*)://(.*)$")


@runtime_checkable
class StorageBackend(Protocol):
    """A flat container of named byte blobs with atomic replacement.

    Implementations guarantee that :meth:`write_bytes` is atomic with
    respect to readers: ``read_bytes`` concurrent with a write returns
    either the previous payload or the new one in full.
    """

    def read_bytes(self, name: str) -> bytes:
        """Return blob ``name``; raise :class:`StoreNotFoundError` (a
        ``KeyError`` subclass) when absent."""
        ...

    def write_bytes(self, name: str, payload: bytes) -> int:
        """Atomically store ``payload`` under ``name``; return its size."""
        ...

    def list(self) -> List[str]:
        """Sorted names of all stored blobs."""
        ...

    def exists(self, name: str) -> bool:
        """True when a blob named ``name`` is stored."""
        ...

    def delete(self, name: str) -> None:
        """Remove blob ``name`` if present (absent names are a no-op)."""
        ...


def _check_name(name: str) -> str:
    """Reject blob names that would escape a flat container."""
    if not name or name != os.path.basename(name) or name in (".", ".."):
        raise ValueError(f"invalid blob name {name!r}: backends are flat "
                         "containers; names must not contain path separators")
    return name


class LocalDirBackend:
    """Blobs as files in one local directory, replaced atomically.

    ``write_bytes`` stages into a temp file in the same directory, fsyncs,
    and ``os.replace``\\ s over the target — a crash or concurrent reader
    sees the old blob or the new one, never a torn file.
    """

    scheme = "file"

    def __init__(self, root: str, create: bool = True, writable: bool = True):
        if create and writable:
            os.makedirs(root, exist_ok=True)
        self.root = root
        #: When False, :meth:`write_bytes` / :meth:`delete` refuse — the
        #: backend is a read-only view suitable for mmap'd shared opens.
        self.writable = writable

    @property
    def url(self) -> str:
        return f"file://{os.path.abspath(self.root)}"

    def _path(self, name: str) -> str:
        return os.path.join(self.root, _check_name(name))

    def read_bytes(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise StoreNotFoundError(
                f"no blob named {name!r} in {self.url}") from None

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Bytes ``[start, start+length)`` of the blob (short at EOF).

        The range-read capability the hydration layer
        (``storage/hydration.py``) fetches container segments through;
        on a local directory it is a plain seek+read.
        """
        if length <= 0:
            return b""
        try:
            with open(self._path(name), "rb") as handle:
                handle.seek(start)
                return handle.read(length)
        except FileNotFoundError:
            raise StoreNotFoundError(
                f"no blob named {name!r} in {self.url}") from None

    def read_view(self, name: str) -> memoryview:
        """Read-only memoryview of blob ``name`` over mmap'd pages.

        Zero heap copy: the view (and any ``np.frombuffer`` array built
        over it) shares the page cache with every other mapping of the
        file.  The underlying mmap stays alive as long as any view into
        it does (ordinary refcounting), and because writes go through
        ``os.replace``, a concurrent re-save leaves existing mappings
        pointing at the old inode — views never observe torn content.
        That guarantee is POSIX semantics: on Windows, replacing a file
        that holds a live mapping raises a sharing-violation error
        instead (the save fails loudly while any view is alive; readers
        are never corrupted either way).  Empty blobs fall back to an
        (empty) bytes view, since zero-length mmaps are not portable.
        """
        path = self._path(name)
        try:
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size == 0:
                    return memoryview(b"")
                mapped = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except FileNotFoundError:
            raise StoreNotFoundError(
                f"no blob named {name!r} in {self.url}") from None
        return memoryview(mapped)

    def blob_version(self, name: str):
        """Change stamp of blob ``name`` (None when absent): a new stamp
        means the content may differ.  ``os.replace`` rewrites always
        change the inode, so the stamp is robust to sub-ns timestamps."""
        try:
            st = os.stat(self._path(name))
        except (FileNotFoundError, ValueError):
            return None
        return (st.st_ino, st.st_mtime_ns, st.st_size)

    def _check_writable(self) -> None:
        if not self.writable:
            raise PermissionError(
                f"backend {self.url} was opened writable=False; "
                "reopen without writable=False to mutate it")

    def write_bytes(self, name: str, payload: bytes) -> int:
        self._check_writable()
        path = self._path(name)
        fd, tmp_path = tempfile.mkstemp(prefix=name + ".", suffix=".tmp",
                                        dir=self.root)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
            self._fsync_dir()
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        return len(payload)

    def _fsync_dir(self) -> None:
        """Best-effort fsync of the directory so the rename itself is
        durable — without it a crash after ``os.replace`` can roll the
        directory entry back to the old (or no) blob even though the new
        file's bytes were fsynced.  Best-effort because some filesystems
        (and all of Windows) refuse ``open(dir)``."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def list(self) -> List[str]:
        try:
            entries = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            name for name in entries
            if os.path.isfile(os.path.join(self.root, name))
            and not name.endswith(".tmp")
        )

    def exists(self, name: str) -> bool:
        return os.path.isfile(self._path(name))

    def delete(self, name: str) -> None:
        self._check_writable()
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        mode = "" if self.writable else ", writable=False"
        return f"LocalDirBackend({self.root!r}{mode})"


class InMemoryBackend:
    """Blobs in a process-local dict (testing, scratch, ``mem://`` URLs).

    Named instances live in a registry so ``mem://<name>`` resolves to the
    same container everywhere in the process; anonymous instances
    (``InMemoryBackend()``) are private to their creator.
    """

    scheme = "mem"

    _registry: Dict[str, "InMemoryBackend"] = {}
    _registry_lock = threading.Lock()

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self._blobs: Dict[str, bytes] = {}
        #: Monotonic per-blob write counters (the mem:// "etag"): a dict
        #: has no mtime, so cache layers key freshness on these instead.
        self._versions: Dict[str, int] = {}
        self._write_seq = 0
        self._lock = threading.Lock()

    @classmethod
    def named(cls, name: str) -> "InMemoryBackend":
        """The process-wide container registered under ``name``."""
        with cls._registry_lock:
            backend = cls._registry.get(name)
            if backend is None:
                backend = cls._registry[name] = cls(name)
            return backend

    @classmethod
    def discard(cls, name: str) -> None:
        """Drop the registered container ``name`` (absent is a no-op)."""
        with cls._registry_lock:
            cls._registry.pop(name, None)

    @property
    def url(self) -> str:
        return f"mem://{self.name}" if self.name \
            else f"mem://anon-{id(self):x}"

    def read_bytes(self, name: str) -> bytes:
        with self._lock:
            try:
                return self._blobs[_check_name(name)]
            except KeyError:
                raise StoreNotFoundError(
                    f"no blob named {name!r} in {self.url}") from None

    def read_view(self, name: str) -> memoryview:
        """Read-only view of the stored bytes (already zero-copy)."""
        return memoryview(self.read_bytes(name))

    def read_range(self, name: str, start: int, length: int) -> bytes:
        """Bytes ``[start, start+length)`` of the blob (short at EOF)."""
        if length <= 0:
            return b""
        return self.read_bytes(name)[start:start + length]

    def blob_version(self, name: str):
        """Write counter of blob ``name`` (None when absent)."""
        with self._lock:
            return self._versions.get(_check_name(name))

    def write_bytes(self, name: str, payload: bytes) -> int:
        payload = bytes(payload)
        with self._lock:
            self._write_seq += 1
            self._blobs[_check_name(name)] = payload
            self._versions[name] = self._write_seq
        return len(payload)

    def list(self) -> List[str]:
        with self._lock:
            return sorted(self._blobs)

    def exists(self, name: str) -> bool:
        with self._lock:
            return _check_name(name) in self._blobs

    def delete(self, name: str) -> None:
        with self._lock:
            self._blobs.pop(_check_name(name), None)
            self._versions.pop(name, None)

    def __repr__(self) -> str:
        return f"InMemoryBackend(name={self.name!r}, blobs={len(self._blobs)})"


class ZipBackend:
    """All blobs inside one zip archive — the object-store stand-in.

    The archive is the unit of durability: every mutation rewrites it to a
    temp file and ``os.replace``\\ s it into place, so the store is always
    a single self-contained object that can be shipped around whole
    (matching the put/get/list semantics of an object store, where blobs
    are replaced, never patched in place).

    Contents are cached in memory after the first touch; the cache is
    invalidated when the archive's mtime/size changes on disk, so separate
    ``ZipBackend`` instances over the same archive observe each other's
    (whole-archive) writes.
    """

    scheme = "zip"

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._blobs: Optional[Dict[str, bytes]] = None
        self._stamp: Optional[Tuple[float, int]] = None
        #: Nesting depth of :meth:`batch` contexts; while positive,
        #: mutations stage in the cache and the archive rewrite is
        #: deferred to the outermost batch exit (one atomic replace for
        #: N writes instead of N rewrites).
        self._defer = 0
        self._dirty = False

    @property
    def url(self) -> str:
        return f"zip://{os.path.abspath(self.path)}"

    # -- archive <-> cache -------------------------------------------------
    def _disk_stamp(self) -> Optional[Tuple[float, int]]:
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            return None
        return (st.st_mtime, st.st_size)

    def _loaded(self) -> Dict[str, bytes]:
        """The blob cache, (re)read from disk when the archive changed.

        While a :meth:`batch` is open the cache holds staged, unflushed
        writes and is never reloaded out from under them.
        """
        if self._defer and self._blobs is not None:
            return self._blobs
        stamp = self._disk_stamp()
        if self._blobs is None or stamp != self._stamp:
            blobs: Dict[str, bytes] = {}
            if stamp is not None:
                try:
                    with zipfile.ZipFile(self.path, "r") as archive:
                        for info in archive.infolist():
                            blobs[info.filename] = archive.read(info)
                except (zipfile.BadZipFile, EOFError) as exc:
                    # Only genuinely mangled bytes are corruption.  Other
                    # OSErrors (EIO, EACCES, network-fs hiccups) propagate
                    # as-is so ResilientBackend still retries them instead
                    # of giving up on a transient fault.
                    raise StoreCorruptedError(
                        f"archive {self.url} is not a readable zip: {exc}"
                    ) from exc
            self._blobs = blobs
            self._stamp = stamp
        return self._blobs

    def _flush(self) -> None:
        """Rewrite the whole archive atomically from the cache."""
        assert self._blobs is not None
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
            for name in sorted(self._blobs):
                archive.writestr(name, self._blobs[name])
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(self.path),
                                        suffix=".tmp", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._stamp = self._disk_stamp()

    # -- batched writes ----------------------------------------------------
    def batch(self) -> "_ZipBatch":
        """Defer archive rewrites: ``with backend.batch(): ...``.

        Every ``write_bytes``/``delete`` inside the context stages in the
        cache; the whole archive is rewritten (and atomically replaced)
        once at the outermost exit.  Turns an N-blob store save from N
        full re-deflations into one.  If the context exits on an
        exception, nothing is flushed and the cache is dropped so the
        next reader sees the on-disk state.
        """
        return _ZipBatch(self)

    def _mutated(self) -> None:
        """Flush now, or mark dirty when inside a batch (lock held)."""
        if self._defer:
            self._dirty = True
        else:
            self._flush()

    # -- StorageBackend ----------------------------------------------------
    def read_bytes(self, name: str) -> bytes:
        with self._lock:
            try:
                return self._loaded()[_check_name(name)]
            except KeyError:
                raise StoreNotFoundError(
                    f"no blob named {name!r} in {self.url}") from None

    def read_view(self, name: str) -> memoryview:
        """Read-only view of the decompressed cached bytes."""
        return memoryview(self.read_bytes(name))

    def blob_version(self, name: str):
        """Archive stamp (None when the blob is absent): the zip is
        rewritten whole, so any mutation moves every blob's version."""
        with self._lock:
            if _check_name(name) not in self._loaded():
                return None
            return self._stamp

    def write_bytes(self, name: str, payload: bytes) -> int:
        payload = bytes(payload)
        with self._lock:
            self._loaded()[_check_name(name)] = payload
            self._mutated()
        return len(payload)

    def list(self) -> List[str]:
        with self._lock:
            return sorted(self._loaded())

    def exists(self, name: str) -> bool:
        with self._lock:
            return _check_name(name) in self._loaded()

    def delete(self, name: str) -> None:
        with self._lock:
            blobs = self._loaded()
            if _check_name(name) in blobs:
                del blobs[name]
                self._mutated()

    def __repr__(self) -> str:
        return f"ZipBackend({self.path!r})"


class _ZipBatch:
    """Context manager behind :meth:`ZipBackend.batch`."""

    def __init__(self, backend: ZipBackend):
        self._backend = backend

    def __enter__(self) -> ZipBackend:
        backend = self._backend
        with backend._lock:
            backend._loaded()  # pin the cache before deferring reloads
            backend._defer += 1
        return backend

    def __exit__(self, exc_type, *exc) -> None:
        backend = self._backend
        with backend._lock:
            backend._defer -= 1
            if backend._defer == 0 and backend._dirty:
                backend._dirty = False
                if exc_type is None:
                    backend._flush()
                else:
                    # Abandon staged writes: drop the cache so the next
                    # reader reloads the untouched on-disk archive.
                    backend._blobs = None
                    backend._stamp = None


# ---------------------------------------------------------------------------
# Capability helpers (duck-typed so third-party backends keep working)
# ---------------------------------------------------------------------------
def read_blob_view(backend: StorageBackend, name: str) -> memoryview:
    """Blob ``name`` as a read-only buffer, zero-copy when the backend
    supports it (``read_view``), otherwise a view over ``read_bytes``.

    ``read_view`` is a capability, not part of the :class:`StorageBackend`
    protocol — backends that only implement the five core operations are
    still fully functional, they just pay one heap copy per read.
    """
    reader = getattr(backend, "read_view", None)
    if reader is not None:
        return reader(name)
    return memoryview(backend.read_bytes(name))


def blob_version(backend: StorageBackend, name: str):
    """Freshness stamp of ``(backend, name)`` or None when unknowable.

    None means either the blob is absent or the backend offers no version
    capability; cache layers must treat both as "do not cache".
    """
    versioner = getattr(backend, "blob_version", None)
    if versioner is None:
        return None
    return versioner(name)


def backend_identity(backend: StorageBackend) -> str:
    """Stable cache identity of a backend.

    The ``url`` property identifies a *location* (two backends over the
    same directory / registry name / archive share it, which is exactly
    what a cross-open cache wants); backends without one fall back to
    object identity, making their entries private to the instance.
    """
    url = getattr(backend, "url", None)
    if isinstance(url, str):
        return url
    return f"pyid:{id(backend):x}"


# ---------------------------------------------------------------------------
# URL resolution
# ---------------------------------------------------------------------------
def parse_url(url_or_path: str) -> Tuple[str, str]:
    """Split ``url_or_path`` into ``(scheme, path)``.

    A bare path (no ``scheme://`` prefix) is the ``file`` scheme.  An
    unknown scheme raises ``ValueError`` naming the accepted ones.
    """
    match = _URL_RE.match(url_or_path)
    if match is None:
        return "file", url_or_path
    scheme, path = match.group(1).lower(), match.group(2)
    if scheme not in URL_SCHEMES:
        accepted = ", ".join(f"{s}://" for s in URL_SCHEMES)
        raise ValueError(
            f"unknown URL scheme {scheme!r} in {url_or_path!r}; "
            f"accepted schemes: {accepted} (or a bare filesystem path)"
        )
    if scheme == "mem" and not path:
        raise ValueError(f"mem:// URL needs a store name: {url_or_path!r}")
    if scheme == "zip" and not path:
        raise ValueError(f"zip:// URL needs an archive path: {url_or_path!r}")
    if scheme.endswith(("http", "https")) and not path:
        raise ValueError(f"{scheme}:// URL needs a host: {url_or_path!r}")
    return scheme, path


def backend_for_url(url_or_path: str, create: bool = True) -> StorageBackend:
    """The *container* backend a store URL designates.

    ``file://`` paths (and bare paths) must name a directory here; use
    :func:`resolve_blob_url` when the target may be a single ``.dm`` file.
    """
    scheme, path = parse_url(url_or_path)
    if scheme == "mem":
        return InMemoryBackend.named(path)
    if scheme == "zip":
        return ZipBackend(path)
    if scheme in ("http", "https", "cached+http", "cached+https"):
        # Imported here (not at module top) so the storage package does
        # not pull the resilience wrapper into every import of this
        # module; the network transport always rides behind the retry +
        # breaker policy.
        from ..resilience.backend import ResilientBackend
        from .remote import CachedHttpBackend, HttpBackend
        if scheme.startswith("cached+"):
            base_url = f"{scheme[len('cached+'):]}://{path}"
            return CachedHttpBackend(ResilientBackend(HttpBackend(base_url)))
        return ResilientBackend(HttpBackend(f"{scheme}://{path}"))
    return LocalDirBackend(path, create=create)


def resolve_blob_url(url_or_path: str,
                     default_blob: str = MONOLITHIC_BLOB,
                     create: bool = True) -> Tuple[StorageBackend, str]:
    """Resolve a *single-blob* target to ``(backend, blob_name)``.

    For the ``file`` scheme the path names the blob itself (backend is its
    parent directory, blob its basename — exactly the classic
    ``store.save("orders.dm")`` shape).  ``mem://`` and ``zip://`` targets
    are whole containers, so the payload goes under ``default_blob``.
    """
    scheme, path = parse_url(url_or_path)
    if scheme == "file":
        directory, blob = os.path.split(path)
        if not blob:
            raise ValueError(f"file target {url_or_path!r} names a "
                             "directory, not a payload file")
        return LocalDirBackend(directory or ".", create=create), blob
    return backend_for_url(url_or_path, create=create), default_blob
