"""Packed bit vector used for the DeepMapping existence index ``V_exist``.

The paper uses the ``bitarray`` package; that package is unavailable offline,
so this module provides an equivalent dynamic bit array backed by a numpy
``uint8`` buffer.  All batch operations (:meth:`BitVector.set_many`,
:meth:`BitVector.test_many`) are vectorized because existence checks run once
per query batch in Algorithm 1 of the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitVector"]


class BitVector:
    """A fixed-length (but growable) array of bits.

    Bits are stored packed, eight per byte, least-significant bit first.

    Parameters
    ----------
    size:
        Number of addressable bits.  Bits are initialised to ``fill``.
    fill:
        Initial value for every bit.
    """

    __slots__ = ("_bits", "_size")

    def __init__(self, size: int, fill: bool = False):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = int(size)
        nbytes = (self._size + 7) // 8
        value = 0xFF if fill else 0x00
        self._bits = np.full(nbytes, value, dtype=np.uint8)
        if fill:
            self._mask_tail()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_indices(cls, indices, size: int) -> "BitVector":
        """Build a vector of ``size`` bits with exactly ``indices`` set."""
        vec = cls(size)
        vec.set_many(np.asarray(indices, dtype=np.int64))
        return vec

    @classmethod
    def from_bools(cls, flags) -> "BitVector":
        """Build a vector from an iterable/array of booleans."""
        arr = np.asarray(flags, dtype=bool)
        vec = cls(arr.size)
        vec.set_many(np.flatnonzero(arr))
        return vec

    @classmethod
    def wrap(cls, size: int, bits) -> "BitVector":
        """Adopt an existing packed ``uint8`` buffer **without copying**.

        The zero-copy payload loader hands the vector an mmap-backed
        (read-only) or bytearray-backed (writable) buffer straight out
        of the container.  A read-only buffer yields a read-only vector:
        mutating calls raise, which is exactly the ``writable=False``
        store contract.  The caller guarantees the tail bits beyond
        ``size`` are zero (true for any buffer produced by this class).
        """
        arr = np.asarray(bits, dtype=np.uint8)
        size = int(size)
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if arr.ndim != 1 or arr.size != (size + 7) // 8:
            raise ValueError(
                f"packed buffer of {arr.size} byte(s) does not match "
                f"{size} bit(s)")
        vec = cls.__new__(cls)
        vec._size = size
        vec._bits = arr
        return vec

    # ------------------------------------------------------------------
    # Scalar access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def test(self, index: int) -> bool:
        """Return the bit at ``index``."""
        self._check_index(index)
        return bool((self._bits[index >> 3] >> (index & 7)) & 1)

    def set(self, index: int, value: bool = True) -> None:
        """Set (or clear, when ``value`` is False) the bit at ``index``."""
        self._check_index(index)
        mask = np.uint8(1 << (index & 7))
        if value:
            self._bits[index >> 3] |= mask
        else:
            self._bits[index >> 3] &= np.uint8(~mask & 0xFF)

    __getitem__ = test

    def __setitem__(self, index: int, value: bool) -> None:
        self.set(index, bool(value))

    # ------------------------------------------------------------------
    # Batch access
    # ------------------------------------------------------------------
    def test_many(self, indices) -> np.ndarray:
        """Vectorized :meth:`test`; returns a boolean array."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise IndexError("bit index out of range")
        return ((self._bits[idx >> 3] >> (idx & 7).astype(np.uint8)) & 1).astype(bool)

    def set_many(self, indices, value: bool = True) -> None:
        """Vectorized :meth:`set`.  Duplicate indices are permitted."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._size:
            raise IndexError("bit index out of range")
        masks = np.left_shift(np.uint8(1), (idx & 7).astype(np.uint8))
        if value:
            np.bitwise_or.at(self._bits, idx >> 3, masks)
        else:
            np.bitwise_and.at(self._bits, idx >> 3, np.invert(masks))

    # ------------------------------------------------------------------
    # Whole-vector operations
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of set bits."""
        return int(np.unpackbits(self._bits, bitorder="little").sum())

    def to_bools(self) -> np.ndarray:
        """Expand to a boolean array of length ``len(self)``."""
        return np.unpackbits(self._bits, bitorder="little")[: self._size].astype(bool)

    def resize(self, new_size: int) -> None:
        """Grow or shrink the vector; new bits are zero."""
        if new_size < 0:
            raise ValueError("new_size must be non-negative")
        new_nbytes = (new_size + 7) // 8
        if new_nbytes > self._bits.size:
            self._bits = np.concatenate(
                [self._bits, np.zeros(new_nbytes - self._bits.size, dtype=np.uint8)]
            )
        else:
            self._bits = self._bits[:new_nbytes].copy()
        self._size = int(new_size)
        self._mask_tail()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Packed storage footprint in bytes (excluding Python overhead)."""
        return int(self._bits.nbytes)

    @property
    def packed(self) -> np.ndarray:
        """The raw packed ``uint8`` buffer (shared with the vector, not a
        copy) — what :meth:`wrap` accepts back."""
        return self._bits

    def to_bytes(self) -> bytes:
        """Serialize to ``8-byte little-endian length + packed payload``."""
        return self._size.to_bytes(8, "little") + self._bits.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BitVector":
        """Inverse of :meth:`to_bytes`."""
        size = int.from_bytes(payload[:8], "little")
        vec = cls(size)
        raw = np.frombuffer(payload[8:], dtype=np.uint8)
        if raw.size != vec._bits.size:
            raise ValueError("payload length does not match encoded size")
        vec._bits = raw.copy()
        return vec

    def copy(self) -> "BitVector":
        """Deep copy."""
        vec = BitVector(self._size)
        vec._bits = self._bits.copy()
        return vec

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._size == other._size and bool(np.array_equal(self._bits, other._bits))

    def __repr__(self) -> str:
        return f"BitVector(size={self._size}, set={self.count()})"

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range [0, {self._size})")

    def _mask_tail(self) -> None:
        """Zero the unused bits of the final byte so counts stay exact."""
        tail = self._size & 7
        if tail and self._bits.size:
            self._bits[-1] &= np.uint8((1 << tail) - 1)
