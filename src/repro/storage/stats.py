"""Shared counters and timers for storage components.

Every store in the reproduction (DeepMapping auxiliary table, array and hash
baselines) reports where its time goes through a :class:`StoreStats` object.
The benchmark harness reads these to reproduce the paper's Figure 7 latency
breakdown (existence check / inference / auxiliary lookup / data loading +
decompression / locate partition / other).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["StoreStats", "Stopwatch"]


class Stopwatch:
    """Minimal accumulating stopwatch based on ``time.perf_counter``."""

    __slots__ = ("seconds", "calls")

    def __init__(self):
        self.seconds = 0.0
        self.calls = 0

    @contextmanager
    def timing(self) -> Iterator[None]:
        """Context manager that adds the elapsed wall time to the total."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds += time.perf_counter() - start
            self.calls += 1

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.seconds = 0.0
        self.calls = 0


class StoreStats:
    """Named counters plus named stopwatches.

    Counter and timer names are created on first use so stores can record
    whatever buckets make sense for them; the benchmark layer aggregates by
    name.  Canonical timer names used across the repo:

    - ``io``: reading partition bytes from the disk store
    - ``decompress``: codec decompression
    - ``deserialize``: pickle loads
    - ``locate``: finding the partition for a key
    - ``search``: in-partition binary search / dict probe
    - ``inference``: neural network forward pass
    - ``existence``: bit-vector membership test
    - ``decode``: label-code to original-value translation
    """

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, Stopwatch] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def timer(self, name: str) -> Stopwatch:
        """Return (creating if needed) the stopwatch called ``name``."""
        watch = self.timers.get(name)
        if watch is None:
            watch = Stopwatch()
            self.timers[name] = watch
        return watch

    @contextmanager
    def timing(self, name: str) -> Iterator[None]:
        """Shorthand for ``self.timer(name).timing()``."""
        with self.timer(name).timing():
            yield

    def seconds(self, name: str) -> float:
        """Accumulated seconds for timer ``name`` (0.0 if never used)."""
        watch = self.timers.get(name)
        return watch.seconds if watch else 0.0

    def total_seconds(self) -> float:
        """Sum over all timers."""
        return sum(watch.seconds for watch in self.timers.values())

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counters and timer seconds (timers keyed by name)."""
        out: Dict[str, float] = dict(self.counters)
        for name, watch in self.timers.items():
            out[f"{name}_seconds"] = watch.seconds
        return out

    def reset(self) -> None:
        """Zero every counter and stopwatch."""
        self.counters.clear()
        for watch in self.timers.values():
            watch.reset()

    def __repr__(self) -> str:
        timers = {k: round(v.seconds, 4) for k, v in self.timers.items()}
        return f"StoreStats(counters={self.counters}, timers={timers})"
