"""Byte-level compression codecs used throughout the reproduction.

The paper evaluates four compression configurations on top of the array and
hash representations, and two on top of the DeepMapping auxiliary table:

=============  =======================================================
Paper name     This module
=============  =======================================================
(no codec)     :class:`IdentityCodec` (``"none"``)
Gzip           :class:`GzipCodec` (``"gzip"``, zlib level 9)
Z-Standard     :class:`ZstdCodec` (``"zstd"``) — **simulated** with zlib
               level 1 because the ``zstandard`` wheel is unavailable in
               this offline environment.  zlib-1 occupies the same design
               point (fast decompression, moderate ratio), which is what
               the paper's Z vs. L sweep exercises.
LZMA           :class:`LzmaCodec` (``"lzma"``)
=============  =======================================================

Dictionary encoding (the paper's ``ABC-D``) is a *columnar transform*, not a
byte codec; it lives in :mod:`repro.storage.serializer`.
"""

from __future__ import annotations

import lzma
import zlib
from typing import Callable, Dict

__all__ = [
    "Codec",
    "IdentityCodec",
    "GzipCodec",
    "ZstdCodec",
    "LzmaCodec",
    "get_codec",
    "available_codecs",
    "register_codec",
]


class Codec:
    """Interface for a lossless byte codec.

    Subclasses must round-trip exactly: ``decompress(compress(b)) == b``.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def compress(self, payload: bytes) -> bytes:
        """Compress ``payload`` and return the encoded bytes."""
        raise NotImplementedError

    def decompress(self, payload: bytes) -> bytes:
        """Exactly invert :meth:`compress`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityCodec(Codec):
    """No-op codec: stores bytes verbatim (paper's uncompressed AB / HB)."""

    name = "none"

    def compress(self, payload: bytes) -> bytes:
        return payload

    def decompress(self, payload: bytes) -> bytes:
        return payload


class GzipCodec(Codec):
    """Gzip-class codec (zlib container, level 9) — the paper's ``-G`` suffix."""

    name = "gzip"

    def __init__(self, level: int = 9):
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return zlib.compress(payload, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


class ZstdCodec(Codec):
    """Z-Standard stand-in — the paper's ``-Z`` suffix.

    The real ``zstandard`` binding is unavailable offline; zlib at level 1
    reproduces its role in the paper's design space: the *fast* codec with a
    moderate compression ratio, contrasted against LZMA (slow, small).
    The paper itself tunes zstd levels per test case (Sec. V-A4); the
    ``level`` knob here serves the same purpose.
    """

    name = "zstd"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise ValueError(f"level must be in [0, 9], got {level}")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return zlib.compress(payload, self.level)

    def decompress(self, payload: bytes) -> bytes:
        return zlib.decompress(payload)


class LzmaCodec(Codec):
    """LZMA codec — the paper's ``-L`` suffix (slowest, best ratio)."""

    name = "lzma"

    def __init__(self, preset: int = 6):
        if not 0 <= preset <= 9:
            raise ValueError(f"lzma preset must be in [0, 9], got {preset}")
        self.preset = preset

    def compress(self, payload: bytes) -> bytes:
        return lzma.compress(payload, preset=self.preset)

    def decompress(self, payload: bytes) -> bytes:
        return lzma.decompress(payload)


_REGISTRY: Dict[str, Callable[[], Codec]] = {
    "none": IdentityCodec,
    "gzip": GzipCodec,
    "zstd": ZstdCodec,
    "lzma": LzmaCodec,
}


def get_codec(name: str) -> Codec:
    """Instantiate a codec by registry name (``none|gzip|zstd|lzma``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_codecs() -> list:
    """Names of all registered codecs, sorted."""
    return sorted(_REGISTRY)


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a custom codec factory under ``name`` (used by extensions)."""
    _REGISTRY[name] = factory
