"""On-disk partition storage.

Partitions (compressed byte blobs) live in a flat container, one blob
each.  The paper's small-machine experiments hinge on the cost of bringing
partitions from disk back into a constrained memory pool; :class:`DiskStore`
charges that I/O against a :class:`~repro.storage.stats.StoreStats` timer so
the benchmark harness can report it (Figure 7's "data loading" bucket).

Where the blobs physically live is pluggable: by default a local
directory, but any :class:`~repro.storage.backends.StorageBackend`
(in-memory, zip archive, a future object store) can host them — pass
``backend=`` and the store becomes a thin timed adapter over it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Iterator, Optional

from .backends import StorageBackend
from .stats import StoreStats

__all__ = ["DiskStore"]


class DiskStore:
    """A flat container of named byte blobs with timed reads.

    Parameters
    ----------
    directory:
        Where blobs are stored.  When ``None`` (and no ``backend``) a
        private temporary directory is created and removed on
        :meth:`close`.
    stats:
        Optional shared stats sink; reads are timed under ``"io"``.
    backend:
        Optional :class:`~repro.storage.backends.StorageBackend` hosting
        the blobs instead of a local directory — decouples partition
        payload location from everything that reads through this store.
    """

    def __init__(self, directory: Optional[str] = None,
                 stats: Optional[StoreStats] = None,
                 backend: Optional[StorageBackend] = None):
        if backend is not None and directory is not None:
            raise ValueError("pass either directory or backend, not both")
        self._backend = backend
        if backend is not None:
            self._directory = getattr(backend, "root", None)
            self._owns_directory = False
        elif directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro-diskstore-")
            self._owns_directory = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._directory = directory
            self._owns_directory = False
        self.stats = stats if stats is not None else StoreStats()
        self._sizes: dict = {}

    # ------------------------------------------------------------------
    @property
    def backend(self) -> Optional[StorageBackend]:
        """The hosting backend, when this store is backend-hosted."""
        return self._backend

    @property
    def directory(self) -> str:
        """Directory backing this store (local stores only)."""
        if self._directory is None:
            raise TypeError(f"{self._backend!r} has no local directory")
        return self._directory

    def path(self, name: str) -> str:
        """Filesystem path for blob ``name`` (local stores only)."""
        safe = name.replace(os.sep, "_")
        return os.path.join(self.directory, safe)

    def _safe(self, name: str) -> str:
        return name.replace(os.sep, "_")

    def write(self, name: str, payload: bytes) -> int:
        """Store ``payload`` under ``name``; returns the byte count."""
        if self._backend is not None:
            self._backend.write_bytes(self._safe(name), payload)
        else:
            with open(self.path(name), "wb") as handle:
                handle.write(payload)
        self._sizes[name] = len(payload)
        return len(payload)

    def read(self, name: str) -> bytes:
        """Read blob ``name``; raises ``KeyError`` if absent."""
        if self._backend is not None:
            with self.stats.timing("io"):
                payload = self._backend.read_bytes(self._safe(name))
        else:
            try:
                with self.stats.timing("io"):
                    with open(self.path(name), "rb") as handle:
                        payload = handle.read()
            except FileNotFoundError:
                raise KeyError(
                    f"no blob named {name!r} in {self._directory}") from None
        self.stats.bump("blobs_read")
        self.stats.bump("bytes_read", len(payload))
        return payload

    def delete(self, name: str) -> None:
        """Remove blob ``name`` if present."""
        if self._backend is not None:
            self._backend.delete(self._safe(name))
        else:
            try:
                os.remove(self.path(name))
            except FileNotFoundError:
                pass
        self._sizes.pop(name, None)

    def exists(self, name: str) -> bool:
        """True when a blob named ``name`` is stored."""
        if self._backend is not None:
            return self._backend.exists(self._safe(name))
        return os.path.exists(self.path(name))

    def names(self) -> Iterator[str]:
        """Iterate over stored blob names."""
        if self._backend is not None:
            return iter(self._backend.list())
        return iter(sorted(os.listdir(self._directory)))

    def size(self, name: str) -> int:
        """Stored byte count of blob ``name``."""
        if name in self._sizes:
            return self._sizes[name]
        if self._backend is not None:
            return len(self._backend.read_bytes(self._safe(name)))
        return os.path.getsize(self.path(name))

    def total_bytes(self) -> int:
        """Total stored footprint of all blobs."""
        if self._backend is not None:
            return sum(len(self._backend.read_bytes(name))
                       for name in self._backend.list())
        return sum(
            os.path.getsize(os.path.join(self._directory, f))
            for f in os.listdir(self._directory)
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Remove the backing directory when this store owns it."""
        if self._owns_directory and os.path.isdir(self._directory):
            shutil.rmtree(self._directory, ignore_errors=True)

    def __enter__(self) -> "DiskStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        host = self._backend if self._backend is not None else self._directory
        return f"DiskStore({host!r}, blobs={len(list(self.names()))})"
