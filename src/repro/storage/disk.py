"""On-disk partition storage.

Partitions (compressed byte blobs) live in a directory, one file each.  The
paper's small-machine experiments hinge on the cost of bringing partitions
from disk back into a constrained memory pool; :class:`DiskStore` charges
that I/O against a :class:`~repro.storage.stats.StoreStats` timer so the
benchmark harness can report it (Figure 7's "data loading" bucket).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Iterator, Optional

from .stats import StoreStats

__all__ = ["DiskStore"]


class DiskStore:
    """A flat directory of named byte blobs.

    Parameters
    ----------
    directory:
        Where blobs are stored.  When ``None`` a private temporary directory
        is created and removed on :meth:`close`.
    stats:
        Optional shared stats sink; reads are timed under ``"io"``.
    """

    def __init__(self, directory: Optional[str] = None, stats: Optional[StoreStats] = None):
        if directory is None:
            self._directory = tempfile.mkdtemp(prefix="repro-diskstore-")
            self._owns_directory = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._directory = directory
            self._owns_directory = False
        self.stats = stats if stats is not None else StoreStats()
        self._sizes: dict = {}

    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        """Directory backing this store."""
        return self._directory

    def path(self, name: str) -> str:
        """Filesystem path for blob ``name``."""
        safe = name.replace(os.sep, "_")
        return os.path.join(self._directory, safe)

    def write(self, name: str, payload: bytes) -> int:
        """Store ``payload`` under ``name``; returns the byte count."""
        with open(self.path(name), "wb") as handle:
            handle.write(payload)
        self._sizes[name] = len(payload)
        return len(payload)

    def read(self, name: str) -> bytes:
        """Read blob ``name``; raises ``KeyError`` if absent."""
        try:
            with self.stats.timing("io"):
                with open(self.path(name), "rb") as handle:
                    payload = handle.read()
        except FileNotFoundError:
            raise KeyError(f"no blob named {name!r} in {self._directory}") from None
        self.stats.bump("blobs_read")
        self.stats.bump("bytes_read", len(payload))
        return payload

    def delete(self, name: str) -> None:
        """Remove blob ``name`` if present."""
        try:
            os.remove(self.path(name))
        except FileNotFoundError:
            pass
        self._sizes.pop(name, None)

    def exists(self, name: str) -> bool:
        """True when a blob named ``name`` is stored."""
        return os.path.exists(self.path(name))

    def names(self) -> Iterator[str]:
        """Iterate over stored blob names."""
        return iter(sorted(os.listdir(self._directory)))

    def size(self, name: str) -> int:
        """Stored byte count of blob ``name``."""
        if name in self._sizes:
            return self._sizes[name]
        return os.path.getsize(self.path(name))

    def total_bytes(self) -> int:
        """Total on-disk footprint of all blobs."""
        return sum(
            os.path.getsize(os.path.join(self._directory, f))
            for f in os.listdir(self._directory)
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Remove the backing directory when this store owns it."""
        if self._owns_directory and os.path.isdir(self._directory):
            shutil.rmtree(self._directory, ignore_errors=True)

    def __enter__(self) -> "DiskStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"DiskStore({self._directory!r}, blobs={len(list(self.names()))})"
