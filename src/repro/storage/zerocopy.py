"""Zero-copy payload container: pickle protocol 5 with out-of-band buffers.

A classic pickle inlines every array's bytes into the stream, so loading
always copies them onto the heap.  This module packs an object graph into
a small framed container instead:

``MAGIC | n_buffers | head_len | (offset, length) x n | head | buffers``

The *head* is the protocol-5 pickle of the object with every contiguous
array exported through ``buffer_callback``; the buffers follow, each
aligned to 64 bytes.  :func:`unpack` rebuilds the object by handing
``pickle.loads`` memoryview slices of the container — with
``zero_copy=True`` over an mmap'd file, NumPy reconstructs those arrays
as ``np.frombuffer`` views over the shared pages: no per-open copy, and
concurrent opens of the same store share physical memory.  Views built
from a read-only buffer come back with ``writeable=False``, which is
exactly the contract of a ``repro.open(..., writable=False)`` store.

With ``zero_copy=False`` (the default) each buffer is materialized as a
private ``bytearray`` first, so the loaded arrays are ordinary writable
copies — the copy fallback mutating stores need.

The format is self-describing: :func:`is_packed` sniffs the magic, so
readers can fall back to plain ``pickle.loads`` for payloads written
before this container existed.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List

__all__ = ["pack", "unpack", "is_packed", "MAGIC"]

#: Container signature.  Deliberately not a valid pickle opcode sequence,
#: so feeding a packed payload to a legacy ``pickle.loads`` fails loudly.
MAGIC = b"RZC1\x00\xff"

#: Buffer segments start on this alignment so reconstructed views are
#: friendly to vectorized loads whatever their dtype.
_ALIGN = 64

_HEADER = struct.Struct("<QQ")  # n_buffers, head_len
_SLOT = struct.Struct("<QQ")    # absolute offset, length


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack(obj: Any) -> bytearray:
    """Serialize ``obj`` into the zero-copy container format.

    Returns the assembled buffer as a ``bytearray`` (every backend write
    path accepts any buffer; copying to ``bytes`` would transiently
    double peak memory for large payloads).
    """
    picklebuffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5,
                        buffer_callback=picklebuffers.append)
    raws: List[memoryview] = []
    for pb in picklebuffers:
        try:
            raw = pb.raw()
        except BufferError:
            # Non-contiguous exports cannot be viewed flat; snapshot them.
            raw = memoryview(memoryview(pb).tobytes())
        raws.append(raw.cast("B"))

    index_size = len(MAGIC) + _HEADER.size + _SLOT.size * len(raws)
    offset = _aligned(index_size + len(head))
    slots = []
    for raw in raws:
        slots.append((offset, raw.nbytes))
        offset = _aligned(offset + raw.nbytes)

    # Assembled once in a bytearray and returned as-is: a bytes() copy
    # here would transiently double peak memory for large payloads, and
    # every consumer (backend write paths, unpack) takes any buffer.
    out = bytearray(offset if raws else index_size + len(head))
    pos = 0
    out[pos:pos + len(MAGIC)] = MAGIC
    pos += len(MAGIC)
    _HEADER.pack_into(out, pos, len(raws), len(head))
    pos += _HEADER.size
    for start, length in slots:
        _SLOT.pack_into(out, pos, start, length)
        pos += _SLOT.size
    out[pos:pos + len(head)] = head
    for raw, (start, length) in zip(raws, slots):
        out[start:start + length] = raw
    return out


def is_packed(payload) -> bool:
    """True when ``payload`` starts with the container magic."""
    view = memoryview(payload)
    return view.nbytes >= len(MAGIC) and bytes(view[:len(MAGIC)]) == MAGIC


def unpack(payload, zero_copy: bool = False) -> Any:
    """Inverse of :func:`pack`.

    ``payload`` is any buffer (bytes, memoryview, mmap view).  With
    ``zero_copy=True`` the reconstructed arrays are *views into
    payload* — the caller must keep the backing buffer alive for the
    life of the object graph (NumPy arrays hold a reference to their
    buffer, so ordinary refcounting does this automatically).  With
    ``zero_copy=False`` every buffer is copied into a private, writable
    ``bytearray`` first.
    """
    view = memoryview(payload).cast("B")
    if not view.readonly:
        # Zero-copy views must be immutable whatever the caller handed
        # in (pack() itself returns a mutable bytearray); toreadonly()
        # is a flag flip, not a copy.
        view = view.toreadonly()
    if not is_packed(view):
        raise pickle.UnpicklingError(
            "payload is not a zero-copy container (bad magic)")
    pos = len(MAGIC)
    try:
        n_buffers, head_len = _HEADER.unpack_from(view, pos)
        pos += _HEADER.size
        slots = []
        for _ in range(n_buffers):
            slots.append(_SLOT.unpack_from(view, pos))
            pos += _SLOT.size
        head = view[pos:pos + head_len]
        if head.nbytes != head_len:
            raise ValueError("truncated container head")
        buffers = []
        for start, length in slots:
            segment = view[start:start + length]
            if segment.nbytes != length:
                raise ValueError("truncated container buffer")
            buffers.append(segment if zero_copy else bytearray(segment))
    except (struct.error, ValueError) as exc:
        raise pickle.UnpicklingError(
            f"corrupt zero-copy container: {exc}") from None
    return pickle.loads(head, buffers=buffers)
