"""Zero-copy payload container: pickle protocol 5 with out-of-band buffers.

A classic pickle inlines every array's bytes into the stream, so loading
always copies them onto the heap.  This module packs an object graph into
a small framed container instead:

``MAGIC | n_buffers | head_len | (offset, length) x n | head | buffers |
footer``

The *head* is the protocol-5 pickle of the object with every contiguous
array exported through ``buffer_callback``; the buffers follow, each
aligned to 64 bytes.  :func:`unpack` rebuilds the object by handing
``pickle.loads`` memoryview slices of the container — with
``zero_copy=True`` over an mmap'd file, NumPy reconstructs those arrays
as ``np.frombuffer`` views over the shared pages: no per-open copy, and
concurrent opens of the same store share physical memory.  Views built
from a read-only buffer come back with ``writeable=False``, which is
exactly the contract of a ``repro.open(..., writable=False)`` store.

With ``zero_copy=False`` (the default) each buffer is materialized as a
private ``bytearray`` first, so the loaded arrays are ordinary writable
copies — the copy fallback mutating stores need.

**Integrity.** Version-2 containers (magic ``RZC2``) end in a checksum
footer: one CRC-32 over the head and one per buffer segment.
:func:`unpack` verifies them (``verify=True`` by default) and raises a
typed :class:`~repro.resilience.errors.StoreCorruptedError` naming the
mangled segment — a single flipped byte anywhere in the container is
caught before a corrupt array can reach a lookup.  Verification is paid
once per *load*, and the read path loads a blob once per content version
(the :class:`~repro.storage.blob_cache.BlobCache` keys on the backend's
version stamp), so in steady state it amortizes to first touch.
Version-1 containers (``RZC1``, written before checksums existed) carry
no footer and still load, unverified.

The format is self-describing: :func:`is_packed` sniffs the magic, so
readers can fall back to plain ``pickle.loads`` for payloads written
before this container existed.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, List

from ..resilience.errors import StoreCorruptedError

__all__ = ["pack", "unpack", "is_packed", "MAGIC", "MAGIC_V1"]

#: Legacy (checksum-less) container signature.  Deliberately not a valid
#: pickle opcode sequence, so feeding a packed payload to a legacy
#: ``pickle.loads`` fails loudly.
MAGIC_V1 = b"RZC1\x00\xff"

#: Current container signature (same length as v1: the index layout is
#: unchanged, v2 just appends the checksum footer).
MAGIC = b"RZC2\x00\xff"

#: Buffer segments start on this alignment so reconstructed views are
#: friendly to vectorized loads whatever their dtype.
_ALIGN = 64

_HEADER = struct.Struct("<QQ")  # n_buffers, head_len
_SLOT = struct.Struct("<QQ")    # absolute offset, length
_CRC = struct.Struct("<I")      # one per segment, head first


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack(obj: Any) -> bytearray:
    """Serialize ``obj`` into the zero-copy container format (v2).

    Returns the assembled buffer as a ``bytearray`` (every backend write
    path accepts any buffer; copying to ``bytes`` would transiently
    double peak memory for large payloads).
    """
    picklebuffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5,
                        buffer_callback=picklebuffers.append)
    raws: List[memoryview] = []
    for pb in picklebuffers:
        try:
            raw = pb.raw()
        except BufferError:
            # Non-contiguous exports cannot be viewed flat; snapshot them.
            raw = memoryview(memoryview(pb).tobytes())
        raws.append(raw.cast("B"))

    index_size = len(MAGIC) + _HEADER.size + _SLOT.size * len(raws)
    offset = _aligned(index_size + len(head))
    slots = []
    for raw in raws:
        slots.append((offset, raw.nbytes))
        offset = _aligned(offset + raw.nbytes)

    data_end = offset if raws else index_size + len(head)
    footer_size = _CRC.size * (len(raws) + 1)

    # Assembled once in a bytearray and returned as-is: a bytes() copy
    # here would transiently double peak memory for large payloads, and
    # every consumer (backend write paths, unpack) takes any buffer.
    out = bytearray(data_end + footer_size)
    pos = 0
    out[pos:pos + len(MAGIC)] = MAGIC
    pos += len(MAGIC)
    _HEADER.pack_into(out, pos, len(raws), len(head))
    pos += _HEADER.size
    for start, length in slots:
        _SLOT.pack_into(out, pos, start, length)
        pos += _SLOT.size
    out[pos:pos + len(head)] = head
    crc_pos = data_end
    _CRC.pack_into(out, crc_pos, zlib.crc32(head))
    crc_pos += _CRC.size
    for raw, (start, length) in zip(raws, slots):
        out[start:start + length] = raw
        _CRC.pack_into(out, crc_pos, zlib.crc32(raw))
        crc_pos += _CRC.size
    return out


def is_packed(payload) -> bool:
    """True when ``payload`` starts with a container magic (v1 or v2)."""
    view = memoryview(payload)
    if view.nbytes < len(MAGIC):
        return False
    lead = bytes(view[:len(MAGIC)])
    return lead == MAGIC or lead == MAGIC_V1


def unpack(payload, zero_copy: bool = False, verify: bool = True) -> Any:
    """Inverse of :func:`pack`.

    ``payload`` is any buffer (bytes, memoryview, mmap view).  With
    ``zero_copy=True`` the reconstructed arrays are *views into
    payload* — the caller must keep the backing buffer alive for the
    life of the object graph (NumPy arrays hold a reference to their
    buffer, so ordinary refcounting does this automatically).  With
    ``zero_copy=False`` every buffer is copied into a private, writable
    ``bytearray`` first.

    ``verify=True`` checks the v2 checksum footer and raises
    :class:`StoreCorruptedError` (an ``UnpicklingError`` subclass)
    naming the first mangled segment.  v1 containers have no checksums
    and are loaded as-is either way.
    """
    view = memoryview(payload).cast("B")
    if not view.readonly:
        # Zero-copy views must be immutable whatever the caller handed
        # in (pack() itself returns a mutable bytearray); toreadonly()
        # is a flag flip, not a copy.
        view = view.toreadonly()
    if not is_packed(view):
        raise StoreCorruptedError(
            "payload is not a zero-copy container (bad magic)")
    checksummed = bytes(view[:len(MAGIC)]) == MAGIC
    pos = len(MAGIC)
    try:
        n_buffers, head_len = _HEADER.unpack_from(view, pos)
        pos += _HEADER.size
        slots = []
        for _ in range(n_buffers):
            slots.append(_SLOT.unpack_from(view, pos))
            pos += _SLOT.size
        head = view[pos:pos + head_len]
        if head.nbytes != head_len:
            raise ValueError("truncated container head")
        data_end = _aligned(slots[-1][0] + slots[-1][1]) if slots \
            else pos + head_len
        crcs: List[int] = []
        if checksummed:
            crc_pos = data_end
            for _ in range(n_buffers + 1):
                crcs.append(_CRC.unpack_from(view, crc_pos)[0])
                crc_pos += _CRC.size
        buffers = []
        for start, length in slots:
            segment = view[start:start + length]
            if segment.nbytes != length:
                raise ValueError("truncated container buffer")
            buffers.append(segment if zero_copy else bytearray(segment))
    except (struct.error, ValueError) as exc:
        raise StoreCorruptedError(
            f"corrupt zero-copy container: {exc}") from None
    if checksummed and verify:
        if zlib.crc32(head) != crcs[0]:
            raise StoreCorruptedError(
                "zero-copy container head failed checksum "
                f"(stored 0x{crcs[0]:08x}): bit flip or torn write")
        for i, buffer in enumerate(buffers):
            if zlib.crc32(buffer) != crcs[i + 1]:
                raise StoreCorruptedError(
                    f"zero-copy container segment {i} of {n_buffers} "
                    f"failed checksum (stored 0x{crcs[i + 1]:08x}): "
                    "bit flip or torn write")
    return pickle.loads(head, buffers=buffers)
