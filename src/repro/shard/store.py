"""The sharded DeepMapping store.

:class:`ShardedDeepMapping` partitions a table's key domain across N
independent :class:`~repro.core.deep_mapping.DeepMapping` shards and gives
them one facade with the same surface (``lookup`` / ``lookup_one`` /
``insert`` / ``delete`` / ``update`` / ``save`` / ``load`` /
``size_report``), so existing layers — :func:`repro.core.query.select`,
the CLI, the bench harness — work over it transparently.

Batched lookups run through a pipelined, vectorized read path:

1. **route + prune + sort** — the :mod:`~repro.shard.router` assigns
   every query key a shard ordinal with NumPy array arithmetic; when the
   store carries per-shard
   :class:`~repro.core.negative_filter.NegativeFilter`\\ s (built at fit
   time, persisted in the manifest), keys the owning shard's filter
   rejects go straight to the miss output — no sort slot, no job, no
   dispatch (the filter never false-negatives, so pruning is lossless);
   then one sort puts the *surviving* batch in (shard, key) order: shard
   groups come out contiguous *and* pre-sorted, so no downstream stage
   (notably the aux partition probe) ever sorts again;
2. **staged fan out** — each owning shard runs a
   :class:`~repro.core.deep_mapping.LookupPlan` (existence gate,
   ``T_aux`` probe, aux-gated fused inference through its
   :class:`~repro.nn.compiled.CompiledSession`, decode) as its own job
   on the store's pluggable
   :class:`~repro.store.executors.ExecutorStrategy` (serial, thread
   pool, or free-threading aware; NumPy kernels release the GIL, so
   shard *i* can run inference while shard *j* decompresses aux
   partitions).  :meth:`lookup_async` schedules the whole batch on the
   same strategy and returns a future;
3. **streaming assembly** — every job scatters its finished segment
   straight into preallocated output arrays (disjoint positions), so
   there is no serial concatenate-and-permute merge behind a barrier;
   keys owned by an empty shard (or matching no row) are reported as
   per-key misses.  :meth:`lookup_barrier` keeps the pre-pipeline
   map/merge path as the serial reference — bit-identical by the parity
   suite, tracked for speedup by ``benchmarks/bench_pipeline.py``.

Modifications route the same way: each row is applied to the owning
shard's auxiliary table, and an insert that targets an empty shard
materializes a fresh shard over those rows.  When the sharding config
carries a :class:`~repro.lifecycle.LifecycleConfig`, every mutation batch
ends with a :class:`~repro.lifecycle.MaintenanceEngine` pass — policy-
driven retrains on the fan-out pool, plus range shard split/merge
rebalancing with per-shard MHAS sizing (``split_shard`` /
``merge_shards`` hold the mechanics; the engine holds the policy).

Persistence reuses the storage substrate: every shard's auxiliary table
runs through :class:`~repro.storage.partition.SortedPartitionStore` with a
per-shard blob prefix into one *shared*
:class:`~repro.storage.buffer_pool.BufferPool`, so a single byte budget
caps resident partitions across the whole store.  ``save()`` writes one
``DeepMapping`` payload per non-empty shard plus a JSON manifest
(:mod:`~repro.shard.manifest`) into any
:class:`~repro.storage.backends.StorageBackend` — a local directory,
an in-memory container, or a zip archive, selected by URL scheme.
"""

from __future__ import annotations

import functools
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.config import DeepMappingConfig
from ..core.deep_mapping import (DeepMapping, KeysLike, LookupResult,
                                 RowsLike, SizeReport, normalize_keys,
                                 normalize_rows)
from ..core.negative_filter import (FilterBank, NegativeFilter,
                                    build_store_filter, filter_from_json,
                                    hash_key_columns)
from ..data.table import ColumnTable
from ..lifecycle import LifecycleConfig, MaintenanceEngine, derive_build_config
from ..resilience.deadline import Deadline
from ..resilience.errors import DeadlineExceeded
from ..resilience.hedging import HedgeController
from ..resilience.partial import PartialResult
from ..storage.backends import StorageBackend, backend_for_url
from ..storage.blob_cache import payload_cache
from ..storage.buffer_pool import BufferPool
from ..storage.hydration import LazyShard
from ..storage.stats import StoreStats
from ..store.executors import ExecutorStrategy, make_executor
from .manifest import CONFIG_NAME, ShardEntry, ShardManifest
from .router import RangeShardRouter, ShardRouter, make_router, router_from_state

__all__ = ["ShardedDeepMapping", "ShardingConfig"]

#: The decode code every per-shard encoder maps a miss to — pruned keys
#: must carry the same vocab[0] filler a dispatched miss would get (see
#: ``LookupPlan.execute_into`` in core/deep_mapping.py).
_ZERO_CODE = np.zeros(1, dtype=np.int64)

#: Filter sizing for the two pruning tiers, in bits per inserted key.
#: The combined manifest growth must stay under 2 bytes/key after the
#: base64 framing (see docs/sharding.md).  The store-level filter is
#: the workhorse — it answers every batch key with zero routing work —
#: so it gets most of the bit budget; the skinny per-shard filters only
#: screen its survivors, where even a ~30% single-tier FPR compounds
#: with the store tier's ~2% to a sub-percent combined pass rate.
_STORE_FILTER_BITS = 8
_SHARD_FILTER_BITS = 3

#: Fan-outs dispatching at most this many keys run inline instead of
#: through the executor: at that size the thread hand-off costs more
#: than the shard work itself (pruned batches especially — the handful
#: of false-positive survivors is existence-checked without inference).
_SERIAL_DISPATCH_MAX = 4096

#: Hit-heavy batches lose money on pruning (the full-batch probe plus
#: survivor compaction outweigh the few skipped dispatches), so batches
#: above ``_PRUNE_SAMPLE_MIN_N`` first probe a ``_PRUNE_SAMPLE``-key
#: stride sample and skip the prune pass entirely unless the sampled
#: prunable fraction clears ``_PRUNE_MIN_FRACTION``.  Results are
#: bit-identical either way — pruning only moves *where* a miss's
#: filler gets written.
_PRUNE_SAMPLE = 4096
_PRUNE_SAMPLE_MIN_N = 16384
_PRUNE_MIN_FRACTION = 0.55


@dataclass
class ShardingConfig:
    """Knobs of the sharded store (orthogonal to the per-shard build)."""

    #: Number of shards the key domain is split into.
    n_shards: int = 4
    #: ``"range"`` (contiguous leading-key ranges, shrinks per-shard
    #: domains) or ``"hash"`` (uniform placement over all key columns).
    strategy: str = "range"
    #: Thread-pool width for fan-out; ``None`` means
    #: ``min(n_shards, cpu_count)``.  Effective width 1 runs inline.
    max_workers: Optional[int] = None
    #: Executor strategy behind the fan-out and ``lookup_async`` — a name
    #: from :data:`repro.store.EXECUTOR_NAMES` (``"serial"`` /
    #: ``"threads"`` / ``"free-threads"``) or an
    #: :class:`~repro.store.executors.ExecutorStrategy` instance.
    #: ``None`` means a thread pool of :meth:`effective_workers` width —
    #: exactly the pre-strategy behavior.
    executor: Union[str, ExecutorStrategy, None] = None
    #: Shared buffer-pool budget for all shards' aux partitions
    #: (``None`` = unbounded).
    pool_budget_bytes: Optional[int] = None
    #: Write-side maintenance: retrain policy, split/merge rebalancing,
    #: per-shard MHAS sizing (see :mod:`repro.lifecycle`).  ``None`` keeps
    #: the store unmanaged — shards retrain inline on their own
    #: thresholds, exactly the pre-lifecycle behavior.
    lifecycle: Optional[LifecycleConfig] = None
    #: Fault-isolation mode of the lookup fan-out.  ``"raise"`` (the
    #: default, the historical behavior): any shard failure fails the
    #: whole batch.  ``"partial"``: a failing or timed-out shard does not
    #: poison the batch — its keys come back marked in a
    #: :class:`~repro.resilience.partial.PartialResult` while healthy
    #: shards' results stay bit-identical.  Overridable per call via
    #: ``lookup(..., on_shard_error=...)``.
    on_shard_error: str = "raise"
    #: Manifest-level miss pruning: build a compact per-shard
    #: :class:`~repro.core.negative_filter.NegativeFilter` (blocked
    #: Bloom, guaranteed no false negatives) at fit time, keep it in
    #: step through inserts and lifecycle split/merge, and persist it in
    #: the shard manifest (<= 2 bytes/key).  The lookup fan-out consults
    #: the filters before any (shard, key) sort or job submission, so
    #: miss keys skip dispatch entirely; results stay bit-identical
    #: either way.  ``False`` disables building (and, on load, ignores
    #: persisted filters).
    negative_filter: bool = True
    #: Hedged shard reads: when a routed shard's plan-job runs well past
    #: an adaptive multiple of what its batch peers needed (see
    #: :class:`~repro.resilience.hedging.HedgeController`), launch ONE
    #: backup attempt on the fan-out lane and take whichever finishes
    #: first.  Safe because shard lookups are pure reads of an
    #: atomically-snapshotted topology and both attempts scatter
    #: bit-identical bytes into disjoint output rows; bounded by a
    #: per-batch hedge budget.  Off by default (the historical
    #: sequential-wait fan-out).
    hedged_reads: bool = False

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.strategy not in ("range", "hash"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.on_shard_error not in ("raise", "partial"):
            raise ValueError(
                f"on_shard_error must be 'raise' or 'partial', "
                f"got {self.on_shard_error!r}")
        if (self.lifecycle is not None and self.lifecycle.rebalance
                and self.strategy != "range"):
            raise ValueError(
                "split/merge rebalancing requires the 'range' strategy "
                "(hash placement has no contiguous ranges to cut)"
            )

    def effective_workers(self) -> int:
        """Resolved thread-pool width."""
        if self.max_workers is not None:
            return max(1, int(self.max_workers))
        return max(1, min(self.n_shards, os.cpu_count() or 1))


class ShardedDeepMapping:
    """N independent DeepMapping shards behind one mapping facade.

    Build with :meth:`fit`; the facade mirrors
    :class:`~repro.core.deep_mapping.DeepMapping` closely enough that
    query layers accept either.

    Concurrency contract: :meth:`lookup` is safe to call from many
    threads at once (that is the point of the fan-out).  Mutations
    (:meth:`insert` / :meth:`delete` / :meth:`update`) are
    single-writer and must not run concurrently with lookups — a
    mutation can trigger a shard rebuild that swaps structures
    non-atomically, exactly like the monolithic ``rebuild()``.  Racing
    readers fail loudly (an exception), never silently return wrong
    rows.
    """

    def __init__(
        self,
        router: ShardRouter,
        shards: List[Optional[DeepMapping]],
        config: DeepMappingConfig,
        sharding: ShardingConfig,
        value_names: Tuple[str, ...],
        value_dtypes: Dict[str, np.dtype],
        stats: Optional[StoreStats] = None,
        pool: Optional[BufferPool] = None,
        executor: Optional[ExecutorStrategy] = None,
        filters: Optional[List[Optional[NegativeFilter]]] = None,
        store_filter: Optional[NegativeFilter] = None,
    ):
        if len(shards) != router.n_shards:
            raise ValueError(
                f"router expects {router.n_shards} shards, got {len(shards)}"
            )
        if filters is None:
            filters = [None] * router.n_shards
        if len(filters) != router.n_shards:
            raise ValueError(
                f"router expects {router.n_shards} filters, got {len(filters)}"
            )
        #: Router, shard list and per-shard negative filters live in ONE
        #: tuple so lifecycle actions (split/merge) can swap all three
        #: with a single atomic attribute store; readers snapshot the
        #: triple once per operation (a filter must never be consulted
        #: against a shard from a different topology generation).
        self._topology: Tuple[ShardRouter, List[Optional[DeepMapping]],
                              List[Optional[NegativeFilter]]] = (
            router, list(shards), list(filters))
        #: Lazily built ``(filters_list, FilterBank)`` pair backing the
        #: one-gather prune pass; keyed by the filters list's identity
        #: (every topology swap installs a fresh list) and reset
        #: explicitly by the in-place mutators (``insert``,
        #: :meth:`refresh_filter`).
        self._filter_bank: Optional[
            Tuple[List[Optional[NegativeFilter]], FilterBank]] = None
        #: Tier-1 pruning filter over the union of every shard's keys.
        #: Since key->shard placement is a pure function of the key, "in
        #: no shard" and "not in the owning shard" are the same
        #: predicate — so this filter prunes without routing anything.
        #: Kept outside the topology triple: splits/merges/retrains
        #: preserve the key union, so it survives them unchanged, and
        #: deletes only ever leave it a stale superset (never a false
        #: negative) until :meth:`refresh_store_filter`.
        self._store_filter = store_filter
        #: Cached per-topology fill/dtype metadata for the prune fast
        #: lane (see :meth:`_prune_meta`); keyed by the shard list's
        #: identity and reset by the in-place mutators, which can grow a
        #: shard's value vocabulary (and with it the vocab[0] filler)
        #: without swapping the list.
        self._prune_meta_cache = None
        self.config = config
        self.sharding = sharding
        self.stats = stats if stats is not None else StoreStats()
        self.pool = pool
        self._value_names = tuple(value_names)
        self._value_dtypes = dict(value_dtypes)
        #: Executor strategy: shard fan-out goes through ``executor.map``,
        #: ``lookup_async`` through ``executor.submit``.  A strategy the
        #: store built itself (config named it, or None) is store-owned;
        #: an instance supplied via ``ShardingConfig.executor`` stays
        #: caller-owned and is never closed by :meth:`close`.
        self.executor: ExecutorStrategy = (
            executor if executor is not None
            else make_executor(sharding.executor,
                               sharding.effective_workers()))
        self._owns_executor = self.executor is not sharding.executor
        #: Adaptive hedge-delay controller (None when hedging is off);
        #: shared across batches so the duration EWMA spans traffic.
        self.hedger: Optional[HedgeController] = (
            HedgeController() if sharding.hedged_reads else None)
        #: False for stores opened via ``repro.open(..., writable=False)``:
        #: shard components may be shared with other opens of the same
        #: blobs, so every mutating entry point refuses.
        self.writable = True
        #: Monotonic source of aux-partition prefixes: splits and merges
        #: materialize shards at shifting ordinals, so prefixes are issued
        #: from a counter instead of being derived from the ordinal.
        self._prefix_seq = router.n_shards
        #: Maintenance engine (None = unmanaged store).
        self.engine: Optional[MaintenanceEngine] = None
        if sharding.lifecycle is not None:
            self.engine = MaintenanceEngine(self, sharding.lifecycle)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        table: ColumnTable,
        config: Optional[DeepMappingConfig] = None,
        sharding: Optional[ShardingConfig] = None,
        stats: Optional[StoreStats] = None,
    ) -> "ShardedDeepMapping":
        """Partition ``table`` and train one DeepMapping per shard.

        Shards build concurrently on the fan-out thread pool when the
        effective worker count exceeds one; each shard trains over only
        its own rows (and, under range sharding, over a proportionally
        smaller key domain).
        """
        config = config if config is not None else DeepMappingConfig()
        sharding = sharding if sharding is not None else ShardingConfig()
        stats = stats if stats is not None else StoreStats()

        key_cols = table.key_columns_dict()
        router = make_router(sharding.strategy, key_cols, table.key,
                             sharding.n_shards)
        with stats.timing("route"):
            shard_ids = router.route(key_cols)

        pool = BufferPool(budget_bytes=sharding.pool_budget_bytes,
                          stats=stats)
        value_names = tuple(sorted(table.value_columns))
        value_dtypes = {name: table.column(name).dtype
                        for name in value_names}

        lifecycle = sharding.lifecycle

        def build_one(ordinal: int) -> Optional[DeepMapping]:
            rows = np.flatnonzero(shard_ids == ordinal)
            if rows.size == 0:
                return None
            shard_config = config
            if lifecycle is not None and lifecycle.per_shard_mhas:
                shard_config = derive_build_config(config, int(rows.size),
                                                   lifecycle)
            # Shards share the store's stats sink so pool/io/inference
            # buckets aggregate; increments race benignly under threads.
            return DeepMapping.fit(
                table.take(rows), shard_config, pool=pool, stats=stats,
                aux_name_prefix=_aux_prefix(ordinal),
            )

        # The same strategy that will fan lookups out also fans the
        # per-shard builds out (NumPy training kernels release the GIL).
        executor = make_executor(sharding.executor,
                                 sharding.effective_workers())
        shards = executor.map(build_one, range(sharding.n_shards))

        # One hash pass over the whole table seeds the store-level
        # filter and every shard's filter (empty shards need none:
        # absence prunes).
        filters: List[Optional[NegativeFilter]] = [None] * sharding.n_shards
        store_filter: Optional[NegativeFilter] = None
        if sharding.negative_filter:
            with stats.timing("filter_build"):
                hashes = hash_key_columns(key_cols, router.key_names)
                store_filter = build_store_filter(
                    hashes, bits_per_key=_STORE_FILTER_BITS)
                for ordinal in range(sharding.n_shards):
                    if shards[ordinal] is not None:
                        filters[ordinal] = NegativeFilter.build(
                            hashes[shard_ids == ordinal],
                            bits_per_key=_SHARD_FILTER_BITS)

        # No compile_engines() here: DeepMapping.fit already leaves each
        # shard holding its freshly compiled engine.
        return cls(router, shards, config, sharding,
                   value_names=value_names, value_dtypes=value_dtypes,
                   stats=stats, pool=pool, executor=executor,
                   filters=filters, store_filter=store_filter)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def router(self) -> ShardRouter:
        """The live key→shard router (swapped atomically with the shards)."""
        return self._topology[0]

    @property
    def shards(self) -> List[Optional[DeepMapping]]:
        """The live shard list (swapped atomically with the router)."""
        return self._topology[1]

    @property
    def filters(self) -> List[Optional[NegativeFilter]]:
        """Per-shard negative filters (swapped atomically with the
        router); ``None`` entries mean "never prune this shard"."""
        return self._topology[2]

    def _swap_topology(
        self,
        router: ShardRouter,
        shards: List[Optional[DeepMapping]],
        filters: List[Optional[NegativeFilter]],
    ) -> None:
        """Install a new (router, shards, filters) triple atomically."""
        if len(shards) != router.n_shards:
            raise ValueError(
                f"router expects {router.n_shards} shards, got {len(shards)}"
            )
        if len(filters) != router.n_shards:
            raise ValueError(
                f"router expects {router.n_shards} filters, got {len(filters)}"
            )
        self._topology = (router, list(shards), list(filters))
        # Keep the recorded knob in step so save/load round-trips the
        # post-rebalance shard count.
        self.sharding.n_shards = router.n_shards

    @property
    def n_shards(self) -> int:
        """Number of shards (including empty ones)."""
        return self.router.n_shards

    @property
    def key_names(self) -> Tuple[str, ...]:
        """Key column names."""
        return self.router.key_names

    @property
    def value_names(self) -> Tuple[str, ...]:
        """Value column (task) names."""
        return self._value_names

    def __len__(self) -> int:
        """Live keys across all shards."""
        return sum(len(shard) for shard in self.shards if shard is not None)

    def shard_row_counts(self) -> List[int]:
        """Live keys per shard, in shard order."""
        return [0 if shard is None else len(shard) for shard in self.shards]

    def compile_engines(self) -> int:
        """Eagerly build every live shard's fused lookup kernel.

        Lookups would compile lazily on first use; doing it at load time
        (fit-time shards already carry the engine their build produced)
        keeps first-query latency flat and guarantees the thread-pool
        fan-out hits a ready :class:`~repro.nn.compiled.CompiledSession`
        in each shard.  Returns the number of engines ready; no-op when
        the config disables the compiled path.
        """
        if not getattr(self.config, "compiled_lookup", True):
            return 0
        count = 0
        for shard in self.shards:
            if shard is not None:
                shard.compiled_session()
                count += 1
        return count

    def storage_bytes(self) -> int:
        """Total offline footprint across shards."""
        return self.size_report().total_bytes

    def size_report(self) -> SizeReport:
        """Aggregated per-component storage breakdown (Eq. 1 summed)."""
        reports = [shard.size_report() for shard in self.shards
                   if shard is not None]
        return SizeReport(
            model_bytes=sum(r.model_bytes for r in reports),
            aux_bytes=sum(r.aux_bytes for r in reports),
            exist_bytes=sum(r.exist_bytes for r in reports),
            decode_bytes=sum(r.decode_bytes for r in reports),
            dataset_bytes=sum(r.dataset_bytes for r in reports),
            n_rows=len(self),
            n_in_aux=sum(r.n_in_aux for r in reports),
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, keys: KeysLike, *,
               deadline: Optional[Deadline] = None,
               on_shard_error: Optional[str] = None) -> LookupResult:
        """Batched exact-match lookup across shards, input order preserved.

        The pipelined read path: the route stage sorts the batch **by
        key within shard groups** once (so every shard receives its
        segment pre-sorted and no later stage ever sorts again), each
        shard then runs a staged
        :class:`~repro.core.deep_mapping.LookupPlan` — existence gate,
        ``T_aux`` probe, aux-gated fused inference, decode — as its own
        job on the executor strategy, and finished segments stream
        straight into the preallocated output arrays (shard *i* can be
        decompressing aux partitions while shard *j* runs inference;
        there is no serial merge behind a barrier).  Results are
        bit-identical to :meth:`lookup_barrier`, the pre-pipeline
        reference path, which remains available for comparison and for
        executor strategies without a per-job fan-out lane.

        Resilience knobs (see ``docs/resilience.md``):

        ``deadline``
            A :class:`~repro.resilience.Deadline` bounding the whole
            call.  Queued shard jobs past the deadline are never started,
            and the merge stops waiting on stragglers once the budget is
            gone; what happens to their keys depends on the error mode.
        ``on_shard_error``
            ``"raise"`` (default, the historical behavior) fails the
            whole batch on the first shard error.  ``"partial"``
            isolates the fault: healthy shards' results are returned
            bit-identical in a
            :class:`~repro.resilience.PartialResult` whose
            ``failed_mask`` marks the keys owned by failing or
            timed-out shards (forced to ``found=False``).  ``None``
            defers to ``ShardingConfig.on_shard_error``.  When every
            shard succeeds, partial mode returns a plain
            :class:`LookupResult` — zero overhead on the healthy path.
        """
        mode = on_shard_error if on_shard_error is not None \
            else self.sharding.on_shard_error
        if mode not in ("raise", "partial"):
            raise ValueError(
                f"on_shard_error must be 'raise' or 'partial', got {mode!r}")
        key_cols = self._normalize_keys(keys)
        n = int(np.asarray(key_cols[self.key_names[0]]).size)
        # One topology snapshot for the whole batch: route, prune,
        # fan-out and merge all see the same (router, shards, filters)
        # triple, so a lifecycle swap between the route and index steps
        # can never mispair cuts (or filters) with ordinals.  This does
        # NOT license concurrent mutation — the single-writer contract
        # stands (a retired shard's dropped aux storage is not safe to
        # read through).
        router, shards, filters = self._topology
        if n == 0:
            return LookupResult(
                found=np.zeros(0, dtype=bool),
                values={c: self._placeholder(c, 0) for c in self.value_names},
            )
        if deadline is not None:
            deadline.check("sharded lookup")
        if router.n_shards == 1 and shards[0] is not None \
                and mode == "raise":
            # Single shard, fail-fast mode: no routing, merging, or
            # fault-isolation bookkeeping to do.  (Partial mode still
            # takes the generic path so a failure comes back marked
            # rather than raised.)
            return shards[0].lookup(key_cols)
        submit_job = getattr(self.executor, "submit_job", None)
        if submit_job is None:
            # Custom strategy without a fan-out job lane: barrier path.
            # It has no per-shard fault boundary, so errors raise
            # regardless of mode — documented in docs/resilience.md.
            return self.lookup_barrier(key_cols)

        # Manifest-tier miss pruning: consult the store-level and
        # per-shard negative filters before any (shard, key) sort or job
        # submission.  A pruned key is a guaranteed miss (neither tier
        # ever false-negatives); only the survivors pay sort + dispatch.
        idx = fill_plan = pre_dtypes = None
        if self._store_filter is not None \
                or any(f is not None for f in filters):
            with self.stats.timing("prune"):
                idx, fill_plan, pre_dtypes = self._prune(
                    router, shards, filters, key_cols, n)

        if idx is not None and int(idx.size) == 0:
            # Every key pruned (typical for an all-miss batch under the
            # exact dense filter): build the outputs directly — there is
            # nothing to route, sort, or dispatch.
            self.stats.bump("pruned_keys", n)
            return self._all_pruned_result(router, shards, fill_plan,
                                           pre_dtypes, n)

        with self.stats.timing("route"):
            if idx is None:
                # Nothing pruned (or no filters): the historical path,
                # including the single-sort range fast lane.
                order, bounds, grouped = self._sorted_route(
                    router, key_cols, n)
            else:
                self.stats.bump("pruned_keys", n - int(idx.size))
                survivors = {name: np.asarray(arr)[idx]
                             for name, arr in key_cols.items()}
                order, bounds, grouped = self._sorted_route(
                    router, survivors, int(idx.size))
                # Destinations live in the ORIGINAL batch positions.
                order = idx[order]

        # Prefetch hint from the batch's per-shard histogram: fire
        # hydration for every cold lazy shard this batch routes into
        # *before* the dtype-promotion probe below (which touches shards
        # serially) and before any plan job runs — remote downloads then
        # overlap on the fan-out workers instead of serializing.  The
        # proxy's hydrate lock makes the race with the main thread
        # benign (one loader runs; the other waits and shares).
        cold = [shards[ordinal] for ordinal in range(router.n_shards)
                if bounds[ordinal + 1] > bounds[ordinal]
                and isinstance(shards[ordinal], LazyShard)
                and not shards[ordinal].hydrated]
        if len(cold) > 1:
            for proxy in cold:
                submit_job(proxy.hydrate)

        # (ordinal, shard, segment, dest) per non-empty routed group.
        jobs: List[Tuple[int, DeepMapping, Dict[str, np.ndarray],
                         np.ndarray]] = []
        segment_dtypes: Dict[str, List[np.dtype]] = \
            {c: [] for c in self.value_names}
        for ordinal in range(router.n_shards):
            start, stop = int(bounds[ordinal]), int(bounds[ordinal + 1])
            if stop <= start:
                continue
            shard = shards[ordinal]
            if shard is None:
                # Misses by definition; the preallocated outputs already
                # read as misses, but the segment still participates in
                # dtype promotion exactly as its placeholder array would
                # have in the barrier merge's concatenate.
                for c in self.value_names:
                    segment_dtypes[c].append(self._placeholder(c, 0).dtype)
                continue
            for c in self.value_names:
                segment_dtypes[c].append(
                    shard.fdecode.encoders[c].vocab.dtype)
            segment = {name: arr[start:stop] for name, arr in grouped.items()}
            jobs.append((ordinal, shard, segment, order[start:stop]))
        if pre_dtypes is not None:
            # Promotion must reflect PRE-prune occupancy: a group the
            # filters emptied entirely still contributed its dtype in
            # the unpruned path, and results are bit-identical only if
            # the output dtypes match too.
            segment_dtypes = pre_dtypes

        # A dispatched miss gets the owning shard's vocab[0] decode
        # filler written by execute_into; a pruned key must read
        # identically.  _prune picked the cheapest write plan:
        #
        # - "paint": every shard shares one filler, and most of the batch
        #   was pruned — allocate the output already holding the filler
        #   (one np.full instead of zeros + fancy assignment; survivors
        #   are overwritten by execute_into with found values or that
        #   same filler).
        # - "assign": shared filler, minority pruned — scalar broadcast
        #   into the pruned positions.
        # - "gather": fillers differ by shard (or shards are missing) —
        #   one filler-by-shard table per column, then a single fancy
        #   assignment.  Rows for EMPTY shards are the dtype zero /
        #   None, which is exactly the placeholder those keys read in
        #   the unpruned path.
        paint = fill_plan is not None and fill_plan[0] == "paint"
        found_out = np.zeros(n, dtype=bool)
        values_out = {}
        for c in self.value_names:
            dtype = (np.result_type(*segment_dtypes[c])
                     if segment_dtypes[c] else self._placeholder(c, 0).dtype)
            if paint:
                values_out[c] = np.full(n, fill_plan[1][c], dtype=dtype)
            elif dtype == object:
                values_out[c] = np.full(n, None, dtype=object)
            else:
                values_out[c] = np.zeros(n, dtype=dtype)
        if fill_plan is not None and fill_plan[0] == "assign":
            _, pruned_pos, col_fillers = fill_plan
            for c in self.value_names:
                values_out[c][pruned_pos] = col_fillers[c]
        elif fill_plan is not None and fill_plan[0] == "gather":
            _, pruned_pos, pruned_ids = fill_plan
            for c in self.value_names:
                out = values_out[c]
                fillers = np.zeros(router.n_shards, dtype=out.dtype) \
                    if out.dtype != object \
                    else np.full(router.n_shards, None, dtype=object)
                for ordinal, shard in enumerate(shards):
                    if shard is not None:
                        fillers[ordinal] = \
                            shard.fdecode.encoders[c].decode(_ZERO_CODE)[0]
                out[pruned_pos] = fillers[pruned_ids]

        def run_job(job) -> None:
            ordinal, shard, segment, dest = job
            if deadline is not None:
                deadline.check(f"shard {ordinal} lookup")
            plan = shard.plan_lookup(segment, presorted=True)
            plan.execute_into(found_out, values_out, dest)

        shard_errors: Dict[int, BaseException] = {}
        stragglers = False  # a timed-out job may still be running
        if len(jobs) <= 1 or (deadline is None and self.hedger is None
                              and int(order.size) <= _SERIAL_DISPATCH_MAX):
            # Tiny dispatches (often: a heavily pruned batch) run their
            # jobs inline — thread hand-off costs more than the work.
            # Deadline-bounded calls keep the executor lane so a
            # straggling shard can be timed out rather than waited on.
            for job in jobs:
                try:
                    run_job(job)
                except Exception as exc:
                    if mode == "raise":
                        raise
                    shard_errors[job[0]] = exc
        else:
            def submit_one(job):
                if deadline is None:
                    return submit_job(run_job, job)
                try:
                    return submit_job(run_job, job, deadline=deadline)
                except TypeError:
                    # Custom strategy whose submit_job() lacks the
                    # deadline capability (pre-resilience signature):
                    # the per-job check still honors the budget.
                    return submit_job(run_job, job)

            if self.hedger is not None:
                # Completion-driven wait with backup attempts for
                # stragglers; the trailing raise below still applies.
                stragglers = self._hedged_wait(jobs, submit_one, deadline,
                                               shard_errors)
                futures = []
            elif (deadline is not None
                  and int(order.size) <= _SERIAL_DISPATCH_MAX):
                # Small deadline-armed dispatches take a single executor
                # hand-off for the whole job set: per-shard submission
                # costs one thread wake-up per shard, which dominates
                # sub-millisecond jobs and lands squarely on the
                # healthy-path p50 the resilience layer promises not to
                # move.  The caller still waits with a timeout, so a
                # wedged shard is classified a straggler instead of
                # blocking past the budget.
                stragglers = self._bundled_wait(jobs, run_job, submit_job,
                                                deadline, shard_errors)
                futures = []
            else:
                futures = [(job, submit_one(job)) for job in jobs]
            for job, future in futures:
                ordinal = job[0]
                try:
                    if deadline is None:
                        future.result()
                    else:
                        future.result(timeout=max(0.0, deadline.remaining()))
                except DeadlineExceeded as exc:
                    # Raised *inside* the job (the executor's dequeue
                    # gate, or the per-job check) — the job is finished
                    # and wrote nothing, so it is a clean failure, not a
                    # straggler.  Must precede the FutureTimeoutError
                    # arm: DeadlineExceeded is a TimeoutError subclass.
                    shard_errors[ordinal] = exc
                except FutureTimeoutError as exc:
                    if future.done():
                        # On 3.11+ FutureTimeoutError aliases builtin
                        # TimeoutError, so this arm also sees a plain
                        # TimeoutError raised *inside* a finished job
                        # (e.g. a backend socket timeout).  That is an
                        # ordinary shard failure, not a straggler.
                        shard_errors[ordinal] = exc
                        continue
                    # Budget exhausted while this shard still runs.  The
                    # job either never starts (the executor's dequeue
                    # gate fails it) or finishes late into arrays we are
                    # about to stop sharing (see the copy below).
                    future.cancel()
                    stragglers = True
                    shard_errors[ordinal] = DeadlineExceeded(
                        f"shard {ordinal} lookup exceeded its deadline")
                except Exception as exc:
                    shard_errors[ordinal] = exc
            if shard_errors and mode == "raise":
                # Deterministic choice: lowest failing ordinal wins.
                raise shard_errors[min(shard_errors)]

        if not shard_errors:
            return LookupResult(found=found_out, values=values_out)

        failed = np.zeros(n, dtype=bool)
        for job in jobs:
            if job[0] in shard_errors:
                failed[job[3]] = True
        if stragglers:
            # A timed-out shard job holds references to these arrays and
            # may scatter into them after we return; hand the caller
            # private copies so the result is immutable from here on.
            found_out = found_out.copy()
            values_out = {c: arr.copy() for c, arr in values_out.items()}
        # A failing job may have scattered part of its segment before
        # dying; force its keys back to misses so found/values agree.
        found_out[failed] = False
        return PartialResult(found=found_out, values=values_out,
                             failed_mask=failed, shard_errors=shard_errors)

    def _bundled_wait(self, jobs, run_job, submit_job,
                      deadline: Deadline,
                      shard_errors: Dict[int, BaseException]) -> bool:
        """Run a small deadline-armed dispatch as one executor job.

        The jobs run back to back on a single worker — the per-job
        deadline gate inside ``run_job`` still applies — and per-shard
        failures are recorded exactly as the per-shard lanes record
        them.  Attribution on expiry is coarser than per-shard
        submission: jobs the budget never let start fail with
        ``DeadlineExceeded`` even if their shard was healthy, matching
        how the serial inline lane already treats tiny undeadlined
        dispatches as one unit of work.  Returns True when the bundle
        was still running at the budget's edge (straggler: the caller
        must stop sharing the output arrays).
        """
        progress = [0]  # jobs[:progress[0]] have fully settled

        def run_all() -> None:
            for job in jobs:
                try:
                    run_job(job)
                except Exception as exc:
                    shard_errors[job[0]] = exc
                progress[0] += 1

        try:
            future = submit_job(run_all, deadline=deadline)
        except TypeError:
            # Custom strategy whose submit_job() lacks the deadline
            # capability (pre-resilience signature).
            future = submit_job(run_all)
        try:
            future.result(timeout=max(0.0, deadline.remaining()))
            return False
        except DeadlineExceeded:
            # The executor's dequeue gate failed the bundle before it
            # started; no job ran.
            pass
        except FutureTimeoutError:
            if future.done():
                # Finished right at the clock's edge; everything is
                # already recorded.
                return False
            future.cancel()
        exc_by_job = {
            job[0]: DeadlineExceeded(
                f"shard {job[0]} lookup exceeded its deadline")
            for job in jobs[progress[0]:]
        }
        for ordinal, exc in exc_by_job.items():
            shard_errors.setdefault(ordinal, exc)
        return not future.done()

    def _hedged_wait(self, jobs, submit_one, deadline: Optional[Deadline],
                     shard_errors: Dict[int, BaseException]) -> bool:
        """Completion-driven fan-out wait with hedged backup attempts.

        Every job launches immediately; the loop then waits for
        *whichever* attempt finishes next (no ordinal-order
        head-of-line blocking).  A job still running past the
        :class:`~repro.resilience.hedging.HedgeController`'s adaptive
        delay — this batch's completed peers set the basis, the
        cross-batch EWMA seeds cold batches — earns ONE backup attempt
        within the per-batch budget; the first success settles the job
        and the loser's identical writes are benign (see
        ``resilience/hedging.py`` for the idempotency argument).  A job
        fails only when *every* launched attempt has failed; a deadline
        expiry cancels what it can and records the rest as
        ``DeadlineExceeded``.  Returns True when any attempt may still
        be running at exit (the caller copies the output arrays before
        exposing a partial result).
        """
        hedger = self.hedger
        budget = hedger.batch_budget(len(jobs))
        state: Dict[int, dict] = {}
        owner: Dict[Future, int] = {}
        for job in jobs:
            future = submit_one(job)
            state[job[0]] = {"job": job, "settled": False, "errors": [],
                             "hedged": False, "start": time.monotonic(),
                             "futures": [future]}
            owner[future] = job[0]
        peer_durations: List[float] = []
        pending = set(owner)
        unsettled = set(state)
        while unsettled and pending:
            if deadline is not None and deadline.expired:
                break
            timeout = (None if deadline is None
                       else max(0.0, deadline.remaining()))
            hedge_delay = (hedger.hedge_delay_s(peer_durations)
                           if budget > 0 else None)
            if hedge_delay is not None:
                now = time.monotonic()
                fires = [state[o]["start"] + hedge_delay - now
                         for o in unsettled if not state[o]["hedged"]]
                if fires:
                    soonest = max(0.0, min(fires))
                    timeout = (soonest if timeout is None
                               else min(timeout, soonest))
            done, pending = futures_wait(pending, timeout=timeout,
                                         return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in done:
                ordinal = owner.pop(future)
                entry = state[ordinal]
                exc = future.exception()
                if exc is None:
                    if not entry["settled"]:
                        entry["settled"] = True
                        unsettled.discard(ordinal)
                        duration = now - entry["start"]
                        peer_durations.append(duration)
                        hedger.record(duration)
                        if entry["hedged"] \
                                and future is entry["futures"][-1]:
                            self.stats.bump("hedges_won", 1)
                    # A losing success wrote the same bytes the winner
                    # did; nothing to record.
                else:
                    entry["errors"].append(exc)
                    if not entry["settled"] \
                            and len(entry["errors"]) >= len(entry["futures"]):
                        # Every launched attempt failed: a real shard
                        # failure, not a straggler.
                        entry["settled"] = True
                        unsettled.discard(ordinal)
                        shard_errors[ordinal] = entry["errors"][0]
            if not unsettled or (deadline is not None and deadline.expired):
                break
            if budget > 0:
                hedge_delay = hedger.hedge_delay_s(peer_durations)
                if hedge_delay is not None:
                    now = time.monotonic()
                    for ordinal in tuple(unsettled):
                        if budget <= 0:
                            break
                        entry = state[ordinal]
                        if entry["hedged"] \
                                or now - entry["start"] < hedge_delay:
                            continue
                        backup = submit_one(entry["job"])
                        entry["hedged"] = True
                        entry["futures"].append(backup)
                        owner[backup] = ordinal
                        pending.add(backup)
                        budget -= 1
                        self.stats.bump("hedges_launched", 1)
        for ordinal in unsettled:
            # Deadline ran out (or the pool died) with attempts still
            # outstanding: cancel what has not started, record the rest.
            for future in state[ordinal]["futures"]:
                future.cancel()
            shard_errors[ordinal] = DeadlineExceeded(
                f"shard {ordinal} lookup exceeded its deadline")
        return any(not future.done()
                   for entry in state.values()
                   for future in entry["futures"])

    def _prune(
        self,
        router: ShardRouter,
        shards: List[Optional[DeepMapping]],
        filters: List[Optional[NegativeFilter]],
        key_cols: Dict[str, np.ndarray],
        n: int,
    ):
        """Negative-filter pass over the batch, before sort/dispatch.

        Two tiers.  Tier 1 is the **store-level** filter over the union
        of every shard's keys, probed with *zero routing* — key→shard
        placement is a pure function of the key, so "in no shard" is
        exactly "not in the owning shard".  Tier 2 is the skinny
        per-shard filters, which only screen tier-1 survivors (a few
        percent of an all-miss batch), so their routed gather runs over
        a tiny index set.  On an all-hit batch tier 1 answers "maybe"
        everywhere and the whole pass is one unrouted probe.

        Returns ``(idx, fill_plan, dtypes)``:

        - ``idx`` — positions surviving the filters, or ``None`` when no
          key was pruned (the caller then runs the exact historical
          path, including the single-sort range fast lane);
        - ``fill_plan`` — ``("paint", fillers)``, ``("assign",
          pruned_pos, fillers)`` or ``("gather", pruned_pos,
          pruned_ids)`` telling the caller the cheapest way to make
          pruned keys read exactly like dispatched misses (see the fill
          block in :meth:`lookup`);
        - ``dtypes`` — per-column dtype promotion lists computed from
          **pre-prune** shard occupancy, so output dtypes match the
          unpruned path even when the filters empty a group entirely.

        The scalar lanes ("paint"/"assign") require every shard live
        with one shared miss filler and vocab dtype per column
        (:meth:`_prune_meta`); then promotion is occupancy-invariant and
        no pre-prune routing is needed at all.  Otherwise the general
        lane routes the full batch and combines both tiers into one
        mask; keys owned by empty shards can be pruned by tier 1 there
        (the "gather" fill table hands them the same placeholder the
        dispatch loop's skip would have).
        """
        hashes = hash_key_columns(key_cols, self.key_names)
        store_filter = self._store_filter
        if store_filter is not None:
            meta = self._prune_meta(shards)
            if meta["scalar_ok"]:
                if n > _PRUNE_SAMPLE_MIN_N:
                    # Cheap strided sample decides whether the batch is
                    # miss-heavy enough for the full pass to pay off.
                    sample = np.ascontiguousarray(
                        hashes[::n // _PRUNE_SAMPLE])
                    frac = 1.0 - float(
                        store_filter.might_contain(sample).mean())
                    if frac < _PRUNE_MIN_FRACTION:
                        return None, None, None
                maybe = store_filter.might_contain(hashes)
                if maybe.all():
                    return None, None, None
                idx = np.flatnonzero(maybe)
                if n - int(idx.size) < _PRUNE_MIN_FRACTION * n:
                    # Not miss-heavy enough for compaction to pay for
                    # itself (small batches skip the sample gate and
                    # land here; the probe itself was cheap).
                    return None, None, None
                if not store_filter.exact:
                    idx = self._screen_survivors(
                        router, filters, key_cols, hashes, idx)
                pre = {c: [meta["dtype"][c]] for c in self.value_names}
                if n - int(idx.size) > n // 2:
                    return idx, ("paint", meta["filler"]), pre
                keep = np.zeros(n, dtype=bool)
                keep[idx] = True
                return idx, ("assign", np.flatnonzero(~keep),
                             meta["filler"]), pre

        shard_ids = router.route(key_cols)
        maybe = None
        if store_filter is not None:
            maybe = store_filter.might_contain(hashes)
        if any(f is not None for f in filters):
            bank = self._bank_for(filters)
            if bank.uniform:
                # The common case: every filter shares one k, so the
                # whole batch is answered by a single routed gather.
                tier2 = bank.might_contain(shard_ids, hashes)
            else:
                tier2 = np.ones(n, dtype=bool)
                for ordinal, filt in enumerate(filters):
                    if filt is None:
                        continue
                    mask = shard_ids == ordinal
                    tier2[mask] = filt.might_contain(hashes[mask])
            maybe = tier2 if maybe is None else (maybe & tier2)
        if maybe is None or maybe.all():
            return None, None, None

        pruned_pos = np.flatnonzero(~maybe)
        pruned_ids = shard_ids[pruned_pos]
        counts = np.bincount(shard_ids, minlength=router.n_shards)
        dtypes: Dict[str, List[np.dtype]] = \
            {c: [] for c in self.value_names}
        for ordinal in range(router.n_shards):
            if not counts[ordinal]:
                continue
            shard = shards[ordinal]
            if shard is None:
                for c in self.value_names:
                    dtypes[c].append(self._placeholder(c, 0).dtype)
                continue
            for c in self.value_names:
                dtypes[c].append(shard.fdecode.encoders[c].vocab.dtype)
        return (np.flatnonzero(maybe),
                ("gather", pruned_pos, pruned_ids), dtypes)

    def _screen_survivors(
        self,
        router: ShardRouter,
        filters: List[Optional[NegativeFilter]],
        key_cols: Dict[str, np.ndarray],
        hashes: np.ndarray,
        idx: np.ndarray,
    ) -> np.ndarray:
        """Tier-2 pass: route only the tier-1 survivors and drop the
        ones their owning shard's filter also rejects."""
        if int(idx.size) == 0 or not any(f is not None for f in filters):
            return idx
        surv_cols = {name: np.asarray(arr)[idx]
                     for name, arr in key_cols.items()}
        shard_ids = router.route(surv_cols)
        surv_hashes = hashes[idx]
        bank = self._bank_for(filters)
        if bank.uniform:
            keep = bank.might_contain(shard_ids, surv_hashes)
        else:
            keep = np.ones(int(idx.size), dtype=bool)
            for ordinal, filt in enumerate(filters):
                if filt is None:
                    continue
                mask = shard_ids == ordinal
                keep[mask] = filt.might_contain(surv_hashes[mask])
        return idx[keep]

    def _prune_meta(self, shards: List[Optional[DeepMapping]]):
        """Cached per-topology facts gating the scalar prune lanes.

        ``scalar_ok`` is True when every shard is live and, per value
        column, all shards share one vocab dtype and one miss filler
        (``vocab[0]``) — then a pruned key's fill is a scalar broadcast
        and dtype promotion is independent of which shards a batch
        touches.  Keyed by the shard *list's identity*: lifecycle swaps
        build a new list, while in-place mutations (insert / update /
        rebuild) invalidate the cache explicitly.
        """
        cached = self._prune_meta_cache
        if cached is not None and cached[0] is shards:
            return cached[1]
        scalar_ok = bool(shards) and all(s is not None for s in shards)
        filler: Dict[str, object] = {}
        dtype: Dict[str, np.dtype] = {}
        if scalar_ok:
            for c in self.value_names:
                dts = [s.fdecode.encoders[c].vocab.dtype for s in shards]
                vals = [s.fdecode.encoders[c].decode(_ZERO_CODE)[0]
                        for s in shards]
                if any(dt != dts[0] for dt in dts[1:]) \
                        or any(v != vals[0] for v in vals[1:]):
                    scalar_ok = False
                    break
                dtype[c] = dts[0]
                filler[c] = vals[0]
        meta = {"scalar_ok": scalar_ok, "filler": filler, "dtype": dtype}
        self._prune_meta_cache = (shards, meta)
        return meta

    def _all_pruned_result(self, router, shards, fill_plan, pre_dtypes,
                           n: int) -> LookupResult:
        """The lookup result when the filters pruned the *whole* batch:
        all misses, every value a fill — bit-identical to what the
        dispatch path produces with zero jobs, minus the route/sort."""
        values_out = {}
        for c in self.value_names:
            dtype = (np.result_type(*pre_dtypes[c]) if pre_dtypes[c]
                     else self._placeholder(c, 0).dtype)
            if fill_plan[0] == "paint" or fill_plan[0] == "assign":
                fillers = (fill_plan[1] if fill_plan[0] == "paint"
                           else fill_plan[2])
                values_out[c] = np.full(n, fillers[c], dtype=dtype)
            else:  # gather
                _, pruned_pos, pruned_ids = fill_plan
                out = (np.full(n, None, dtype=object) if dtype == object
                       else np.zeros(n, dtype=dtype))
                table = np.zeros(router.n_shards, dtype=dtype) \
                    if dtype != object \
                    else np.full(router.n_shards, None, dtype=object)
                for ordinal, shard in enumerate(shards):
                    if shard is not None:
                        table[ordinal] = \
                            shard.fdecode.encoders[c].decode(_ZERO_CODE)[0]
                out[pruned_pos] = table[pruned_ids]
                values_out[c] = out
        return LookupResult(found=np.zeros(n, dtype=bool),
                            values=values_out)

    def _bank_for(self, filters: List[Optional[NegativeFilter]],
                  ) -> FilterBank:
        """The (cached) :class:`FilterBank` for one filters snapshot.

        Concurrent readers may race to build the first bank for a fresh
        topology; both build the same pure function of ``filters`` and
        the last store wins, so the race is benign.
        """
        cached = self._filter_bank
        if cached is not None and cached[0] is filters:
            return cached[1]
        bank = FilterBank(filters)
        self._filter_bank = (filters, bank)
        return bank

    def _sorted_route(
        self, router: ShardRouter, key_cols: Dict[str, np.ndarray], n: int,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        """Route + sort the batch in one pass for the pipelined fan-out.

        Returns ``(order, bounds, grouped)`` where ``order`` permutes the
        batch into (shard, key...) order — shard groups are contiguous
        *and* each group is ascending in flattened-key order, so every
        shard's aux probe rides the partition store's monotonic fast
        path — ``bounds[s]:bounds[s+1]`` delimits shard ``s``'s group,
        and ``grouped`` holds the key columns permuted by ``order``.
        """
        cols = [np.asarray(key_cols[name]) for name in self.key_names]
        if isinstance(router, RangeShardRouter) and len(cols) == 1:
            # Range routing on a single key: shard ordinal is monotone in
            # the key, so one plain sort both groups and orders, and the
            # group boundaries are the cuts' positions in the sorted keys.
            leading = cols[0].astype(np.int64, copy=False)
            order = np.argsort(leading)
            sorted_leading = leading[order]
            bounds = np.empty(router.n_shards + 1, dtype=np.int64)
            bounds[0] = 0
            bounds[-1] = n
            if router.cuts.size:
                bounds[1:-1] = np.searchsorted(sorted_leading, router.cuts,
                                               side="left")
            grouped = {self.key_names[0]: sorted_leading}
            return order, bounds, grouped
        shard_ids = router.route(key_cols)
        # lexsort: last key is primary — shard first, then key columns in
        # significance order, which is exactly ascending flattened-key
        # order inside each shard (the codec is lexicographic).
        order = np.lexsort(tuple(np.asarray(c, dtype=np.int64)
                                 for c in reversed(cols)) + (shard_ids,))
        bounds = np.searchsorted(shard_ids[order],
                                 np.arange(router.n_shards + 1))
        grouped = {name: np.asarray(arr)[order]
                   for name, arr in key_cols.items()}
        return order, bounds, grouped

    def lookup_barrier(self, keys: KeysLike) -> LookupResult:
        """The pre-pipeline read path, kept as the serial reference.

        Routes with a stable sort by shard ordinal only, fans complete
        per-shard lookups out with one barrier, then concatenates and
        inverse-permutes the results.  `benchmarks/bench_pipeline.py`
        tracks :meth:`lookup`'s speedup over this baseline, and the
        parity suite asserts the two stay bit-identical; it also serves
        executor strategies that lack the ``submit_job`` fan-out lane.
        """
        key_cols = self._normalize_keys(keys)
        n = int(np.asarray(key_cols[self.key_names[0]]).size)
        # Reference path: deliberately unpruned (filters ignored), so
        # the parity suite can hold it against the filtered fan-out.
        router, shards, _ = self._topology
        if n == 0:
            return LookupResult(
                found=np.zeros(0, dtype=bool),
                values={c: self._placeholder(c, 0) for c in self.value_names},
            )
        if router.n_shards == 1 and shards[0] is not None:
            return shards[0].lookup(key_cols)

        with self.stats.timing("route"):
            shard_ids = router.route(key_cols)
            order = np.argsort(shard_ids, kind="stable")
            grouped = {name: np.asarray(arr)[order]
                       for name, arr in key_cols.items()}
            bounds = np.searchsorted(shard_ids[order],
                                     np.arange(router.n_shards + 1))

        jobs: List[Tuple[int, int, int]] = []  # (ordinal, start, stop)
        for ordinal in range(router.n_shards):
            start, stop = int(bounds[ordinal]), int(bounds[ordinal + 1])
            if stop > start:
                jobs.append((ordinal, start, stop))

        def run_job(job: Tuple[int, int, int]) -> LookupResult:
            ordinal, start, stop = job
            shard = shards[ordinal]
            count = stop - start
            if shard is None:
                return LookupResult(
                    found=np.zeros(count, dtype=bool),
                    values={c: self._placeholder(c, count)
                            for c in self.value_names},
                )
            segment = {name: arr[start:stop] for name, arr in grouped.items()}
            return shard.lookup(segment)

        results = self._map_jobs(run_job, jobs)

        with self.stats.timing("merge"):
            inverse = np.empty(n, dtype=np.int64)
            inverse[order] = np.arange(n)
            found = np.concatenate([r.found for r in results])[inverse]
            values = {
                column: np.concatenate([r.values[column] for r in results])[inverse]
                for column in self.value_names
            }
        return LookupResult(found=found, values=values)

    def lookup_one(self, **key_parts) -> Optional[Dict[str, object]]:
        """Convenience single-key lookup; returns a row dict or None."""
        key_cols = {name: np.array([value]) for name, value in key_parts.items()}
        if set(key_cols) != set(self.key_names):
            raise KeyError(f"expected key columns {self.key_names}")
        return next(self.lookup(key_cols).rows())

    def contains_batch(self, keys: KeysLike) -> np.ndarray:
        """Liveness test per key — routed to each owning shard's
        existence vector, no value inference.  Keys owned by an empty
        shard are absent by definition."""
        key_cols = self._normalize_keys(keys)
        n = int(np.asarray(key_cols[self.key_names[0]]).size)
        router, shards, _ = self._topology
        if n == 0:
            return np.zeros(0, dtype=bool)
        with self.stats.timing("route"):
            shard_ids = router.route(key_cols)
            order = np.argsort(shard_ids, kind="stable")
            grouped = {name: np.asarray(arr)[order]
                       for name, arr in key_cols.items()}
            bounds = np.searchsorted(shard_ids[order],
                                     np.arange(router.n_shards + 1))
        exists_sorted = np.zeros(n, dtype=bool)
        for ordinal in range(router.n_shards):
            start, stop = int(bounds[ordinal]), int(bounds[ordinal + 1])
            shard = shards[ordinal]
            if stop == start or shard is None:
                continue
            segment = {name: arr[start:stop] for name, arr in grouped.items()}
            exists_sorted[start:stop] = shard.contains_batch(segment)
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.arange(n)
        return exists_sorted[inverse]

    def aux_ratio(self) -> float:
        """Fraction of live rows currently served from auxiliary tables,
        aggregated across shards (empty store: 0.0)."""
        n_rows = len(self)
        if n_rows == 0:
            return 0.0
        in_aux = sum(len(shard.aux) for shard in self.shards
                     if shard is not None)
        return in_aux / n_rows

    def rebuild(self, config: Optional[DeepMappingConfig] = None) -> None:
        """Retrain every live shard from its current logical content.

        ``config`` optionally replaces each shard's build configuration;
        when omitted, a lifecycle store with per-shard MHAS re-derives a
        size-appropriate config per shard and an unmanaged store keeps
        each shard's own.  Shards rebuild concurrently on the executor
        strategy.  Runs under the store's single-writer mutation
        contract (a rebuild swaps shard internals non-atomically).
        """
        self._require_writable()
        lifecycle = self.sharding.lifecycle
        per_shard_sizing = (config is None and lifecycle is not None
                            and lifecycle.per_shard_mhas)

        def rebuild_one(shard: DeepMapping) -> None:
            shard_config = config
            if per_shard_sizing:
                shard_config = derive_build_config(self.config, len(shard),
                                                   lifecycle)
            shard.rebuild(shard_config)

        live = [shard for shard in self.shards if shard is not None]
        self._map_jobs(rebuild_one, live)
        # A retrain preserves the keyset, so the filters were still
        # correct supersets — but rebuilding them here drops the false
        # positives accumulated by deletes since the last build.
        for ordinal in range(self.n_shards):
            self.refresh_filter(ordinal)
        self.refresh_store_filter()
        self._prune_meta_cache = None

    def lookup_async(self, keys: KeysLike, *,
                     deadline: Optional[Deadline] = None,
                     on_shard_error: Optional[str] = None) -> Future:
        """Schedule :meth:`lookup` on the executor strategy.

        Returns a future resolving to the same :class:`LookupResult` the
        synchronous call would produce; the coordinating job runs off the
        fan-out workers, so awaiting it never deadlocks the shard pool.
        Under the serial strategy the work happens inline and the future
        comes back already resolved.

        ``deadline`` bounds the lookup *and* gates the coordinating job
        itself: if the budget is gone before a coordinator lane frees
        up, the future fails with ``DeadlineExceeded`` without touching
        a shard.  ``on_shard_error`` is forwarded to :meth:`lookup`.
        """
        fn = functools.partial(self.lookup, keys, deadline=deadline,
                               on_shard_error=on_shard_error)
        if deadline is None:
            return self.executor.submit(fn)
        try:
            return self.executor.submit(fn, deadline=deadline)
        except TypeError:
            # Custom strategy whose submit() lacks the deadline
            # capability: the lookup itself still honors the budget.
            return self.executor.submit(fn)

    def set_executor(self, executor) -> None:
        """Swap the executor strategy (a name from
        :data:`repro.store.EXECUTOR_NAMES` or a strategy instance).

        The outgoing strategy is closed only if this store owned it; a
        passed-in instance stays caller-owned and is never closed here
        or by :meth:`close`.
        """
        new = make_executor(executor, self.sharding.effective_workers())
        if new is not self.executor and self._owns_executor:
            self.executor.close()
        self.executor = new
        self._owns_executor = new is not executor

    def _map_jobs(self, fn, jobs: List) -> List:
        """Run shard jobs through the executor strategy (job order kept)."""
        return self.executor.map(fn, jobs)

    def close(self) -> None:
        """Shut down the executor strategy's workers (idempotent).

        The store stays usable — an owned strategy rebuilds its pools
        lazily on next use; a caller-owned strategy is left untouched.
        """
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "ShardedDeepMapping":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Modifications
    # ------------------------------------------------------------------
    def insert(self, rows: RowsLike) -> int:
        """Route new rows to their owning shards (Algorithm 3 per shard).

        An insert into an empty shard trains a fresh DeepMapping over just
        those rows.  Returns the number of rows materialized in auxiliary
        tables (fresh shards count their own aux rows).

        The batch is validated against existing keys and intra-batch
        duplicates before any shard is mutated: either problem raises
        ``ValueError`` and no shard changes.
        """
        self._require_writable()
        columns = self._normalize_rows(rows)
        self._require_unique_batch_keys(columns)
        groups = list(self._group_rows(columns))
        already = 0
        for ordinal, rows_idx in groups:
            shard = self.shards[ordinal]
            if shard is not None:
                subset = {name: columns[name][rows_idx]
                          for name in self.key_names}
                already += int(shard.contains_batch(subset).sum())
        if already:
            raise ValueError(f"{already} key(s) already exist; use update()")

        landed = 0
        filters = self.filters
        key_hashes = None
        if self.sharding.negative_filter or self._store_filter is not None \
                or any(f is not None for f in filters):
            key_hashes = hash_key_columns(
                {name: columns[name] for name in self.key_names},
                self.key_names)
        for ordinal, rows_idx in groups:
            subset = {name: arr[rows_idx] for name, arr in columns.items()}
            shard = self.shards[ordinal]
            if shard is None:
                fresh = DeepMapping.fit(
                    ColumnTable(subset, key=self.key_names, name="shard"),
                    self._build_config(int(rows_idx.size)),
                    pool=self.pool, stats=self.stats,
                    aux_name_prefix=self._new_aux_prefix(),
                )
                self._register_shard(fresh)
                self.shards[ordinal] = fresh
                if self.sharding.negative_filter and key_hashes is not None:
                    filters[ordinal] = NegativeFilter.build(
                        key_hashes[rows_idx],
                        bits_per_key=_SHARD_FILTER_BITS)
                landed += len(fresh.aux)
            else:
                landed += shard.insert(subset)
                # Grow the filter only after the shard accepted the rows
                # (an insert that raises must not poison the filter with
                # phantom positives beyond the superset guarantee).
                if filters[ordinal] is not None and key_hashes is not None:
                    filters[ordinal].add(key_hashes[rows_idx])
        # The store-level filter grows with every insert regardless of
        # which shard landed the rows — its keyset is the union.  A
        # dense filter can decline keys outside its built domain; the
        # rows have already landed in their shards, so a full rebuild
        # from shard content re-covers them (widening the domain or
        # falling back to Bloom as build_store_filter sees fit).
        if self._store_filter is not None and key_hashes is not None \
                and not self._store_filter.try_add(key_hashes):
            self.refresh_store_filter()
        # Fresh shards and in-place filter growth both invalidate the
        # cached probe bank (it snapshots the filters' words); a fresh
        # shard (or new vocab) also invalidates the prune fast-lane meta.
        self._filter_bank = None
        self._prune_meta_cache = None
        self._maintain()
        return landed

    def delete(self, keys: KeysLike) -> int:
        """Delete keys from their owning shards; absent keys are ignored.

        Negative filters are deliberately left untouched: a Bloom filter
        cannot clear bits, so a deleted key survives as a false positive
        (one wasted dispatch the shard's existence tier rejects) until
        the next filter rebuild — the superset invariant, never a false
        negative.
        """
        self._require_writable()
        key_cols = self._normalize_keys(keys)
        deleted = 0
        for ordinal, rows_idx in self._group_rows(key_cols):
            shard = self.shards[ordinal]
            if shard is None:
                continue
            deleted += shard.delete({name: arr[rows_idx]
                                     for name, arr in key_cols.items()})
        self._maintain()
        return deleted

    def update(self, rows: RowsLike) -> int:
        """Replace values of existing keys in their owning shards.

        The whole batch is validated first: if any key does not exist,
        ``KeyError`` is raised and no shard is mutated (matching the
        monolithic all-or-nothing contract).
        """
        self._require_writable()
        columns = self._normalize_rows(rows)
        groups = list(self._group_rows(columns))
        missing = 0
        for ordinal, rows_idx in groups:
            shard = self.shards[ordinal]
            if shard is None:
                missing += int(rows_idx.size)
                continue
            subset = {name: columns[name][rows_idx] for name in self.key_names}
            missing += int((~shard.contains_batch(subset)).sum())
        if missing:
            raise KeyError(f"{missing} key(s) do not exist; use insert()")

        landed = 0
        for ordinal, rows_idx in groups:
            landed += self.shards[ordinal].update(
                {name: arr[rows_idx] for name, arr in columns.items()})
        # Updates can grow a shard's value vocab (new fill values), which
        # the prune fast lane snapshots — drop the cached meta.
        self._prune_meta_cache = None
        self._maintain()
        return landed

    def _require_writable(self) -> None:
        if not self.writable:
            raise PermissionError(
                "this store was opened writable=False (shared, read-only "
                "shard components); reopen with repro.open(url) to mutate it")

    def _require_unique_batch_keys(self, columns: Dict[str, np.ndarray]) -> None:
        """Reject mutation batches that repeat a key.

        A duplicate would fail *inside* one shard (a fresh fit or domain
        rebuild requires unique keys) after other shards were already
        mutated — so it is rejected up front to keep insert all-or-nothing.
        """
        stacked = np.stack([np.asarray(columns[name], dtype=np.int64)
                            for name in self.key_names], axis=1)
        n_unique = np.unique(stacked, axis=0).shape[0]
        if n_unique != stacked.shape[0]:
            raise ValueError(
                f"{stacked.shape[0] - n_unique} duplicate key(s) in batch"
            )

    def _group_rows(self, columns: Dict[str, np.ndarray]):
        """Yield ``(shard_ordinal, row_indices)`` for routed input rows."""
        key_cols = {name: columns[name] for name in self.key_names}
        with self.stats.timing("route"):
            shard_ids = self.router.route(key_cols)
        for ordinal in np.unique(shard_ids):
            yield int(ordinal), np.flatnonzero(shard_ids == ordinal)

    # ------------------------------------------------------------------
    # Lifecycle: maintenance plumbing and split/merge mechanics
    # ------------------------------------------------------------------
    def _maintain(self) -> None:
        """One engine pass after a mutation batch (no-op when unmanaged)."""
        if self.engine is not None:
            self.engine.run_pending()

    def _register_shard(self, shard: Optional[DeepMapping]) -> None:
        """Hand a newly materialized shard to the engine (if any)."""
        if self.engine is not None:
            self.engine.adopt(shard)

    def _build_config(self, n_rows: int) -> DeepMappingConfig:
        """Config for materializing a shard of ``n_rows`` rows."""
        lifecycle = self.sharding.lifecycle
        if lifecycle is not None and lifecycle.per_shard_mhas:
            return derive_build_config(self.config, n_rows, lifecycle)
        return self.config

    def _new_aux_prefix(self) -> str:
        """A store-unique aux-partition prefix for a new shard."""
        prefix = _aux_prefix(self._prefix_seq)
        self._prefix_seq += 1
        return prefix

    def refresh_filter(self, ordinal: int) -> None:
        """Rebuild shard ``ordinal``'s negative filter from its live keys.

        Keyset-preserving retrains never *require* this (the filter
        stays a correct superset), but deleted keys accumulate as false
        positives until a rebuild — so the lifecycle engine calls this
        after each retrain and :meth:`rebuild` calls it for every shard,
        resetting the filter's FPR along with the model.  No-op when the
        filter knob is off (a legacy-loaded store keeps its ``None``
        filters rather than growing new ones behind the caller's back).
        Runs under the single-writer mutation contract.
        """
        if not self.sharding.negative_filter:
            return
        shard = self.shards[ordinal]
        self.filters[ordinal] = (None if shard is None
                                 else self._build_filter(shard))
        self._filter_bank = None  # in-place filter swap: bank is stale

    def _build_filter(self, shard: DeepMapping) -> NegativeFilter:
        """A fresh negative filter over one shard's live keys."""
        key_cols = shard.key_codec.unflatten(shard.exist.existing_keys())
        return NegativeFilter.build(
            hash_key_columns(key_cols, self.key_names),
            bits_per_key=_SHARD_FILTER_BITS)

    def refresh_store_filter(self) -> None:
        """Rebuild the store-level (tier-1) filter from all live keys.

        Splits, merges, and retrains preserve the key *union*, so the
        store filter normally survives topology changes untouched; like
        the per-shard tier, it only accumulates false positives through
        deletes.  :meth:`rebuild` calls this to reset its FPR.  No-op
        when the filter knob is off or the store never had a tier-1
        filter (legacy load).
        """
        if not self.sharding.negative_filter or self._store_filter is None:
            return
        parts = []
        for shard in self.shards:
            if shard is None or not len(shard):
                continue
            key_cols = shard.key_codec.unflatten(shard.exist.existing_keys())
            parts.append(hash_key_columns(key_cols, self.key_names))
        hashes = (np.concatenate(parts) if parts
                  else np.empty(0, dtype=np.uint64))
        self._store_filter = build_store_filter(
            hashes, bits_per_key=_STORE_FILTER_BITS)

    def _shard_leading_keys(self, shard: DeepMapping) -> np.ndarray:
        """Live leading-key values of one shard (no value inference)."""
        flat = shard.exist.existing_keys()
        key_cols = shard.key_codec.unflatten(flat)
        return np.asarray(key_cols[self.key_names[0]], dtype=np.int64)

    def _require_range_router(self) -> RangeShardRouter:
        router = self.router
        if not isinstance(router, RangeShardRouter):
            raise TypeError(
                "shard split/merge requires a range router; this store "
                f"routes by {router.kind!r}"
            )
        return router

    def can_split(self, ordinal: int) -> bool:
        """True when shard ``ordinal`` has at least two distinct leading
        keys (the minimum to place a cut with both sides non-empty)."""
        if not isinstance(self.router, RangeShardRouter):
            return False
        shard = self.shards[ordinal]
        if shard is None:
            return False
        leading = self._shard_leading_keys(shard)
        return np.unique(leading).size >= 2

    def split_shard(
        self,
        ordinal: int,
        cut: Optional[int] = None,
        configs: Optional[Tuple[Optional[DeepMappingConfig],
                                Optional[DeepMappingConfig]]] = None,
    ) -> int:
        """Split range shard ``ordinal`` into ``[lower, cut)`` / ``[cut,
        upper)`` halves, rebuilding each as its own DeepMapping.

        ``cut`` defaults to the shard's median live leading key; an
        explicit cut must leave both halves non-empty.  ``configs``
        optionally overrides the halves' build configurations (the
        per-shard MHAS hook).  The halves build concurrently on the
        fan-out pool, then the router (with the new cut) and the shard
        list swap in atomically; the retired shard's aux partitions are
        dropped.  Runs under the store's single-writer mutation contract.
        Returns the cut used.
        """
        self._require_writable()
        router = self._require_range_router()
        shard = self.shards[ordinal]
        if shard is None:
            raise ValueError(f"shard {ordinal} is empty; nothing to split")
        table = shard.to_table()
        leading = np.asarray(table.column(self.key_names[0]), dtype=np.int64)
        uniq = np.unique(leading)
        if uniq.size < 2:
            raise ValueError(
                f"shard {ordinal} holds {uniq.size} distinct leading "
                "key(s); a split needs at least two"
            )
        if cut is None:
            cut = int(np.sort(leading)[leading.size // 2])
            if cut <= int(uniq[0]):
                cut = int(uniq[1])  # left half (keys < cut) must be non-empty
        else:
            cut = int(cut)
            if not int(uniq[0]) < cut <= int(uniq[-1]):
                raise ValueError(
                    f"cut {cut} leaves an empty half: live leading keys "
                    f"span [{int(uniq[0])}, {int(uniq[-1])}]"
                )

        left_rows = np.flatnonzero(leading < cut)
        right_rows = np.flatnonzero(leading >= cut)
        cfg_left, cfg_right = configs if configs is not None else (None, None)
        builds = [
            (table.take(left_rows),
             cfg_left if cfg_left is not None
             else self._build_config(int(left_rows.size)),
             self._new_aux_prefix()),
            (table.take(right_rows),
             cfg_right if cfg_right is not None
             else self._build_config(int(right_rows.size)),
             self._new_aux_prefix()),
        ]

        def build_half(job) -> DeepMapping:
            part, cfg, prefix = job
            return DeepMapping.fit(part, cfg, pool=self.pool,
                                   stats=self.stats, aux_name_prefix=prefix)

        left, right = self._map_jobs(build_half, builds)
        self._register_shard(left)
        self._register_shard(right)

        new_router = router.split_at(ordinal, cut)
        new_shards = (self.shards[:ordinal] + [left, right]
                      + self.shards[ordinal + 1:])
        # Fresh filters for the halves, built from the same row split
        # the shards were, so they swap in with the topology they match.
        left_filter = right_filter = None
        if self.sharding.negative_filter:
            hashes = hash_key_columns(
                {name: np.asarray(table.column(name))
                 for name in self.key_names}, self.key_names)
            left_filter = NegativeFilter.build(
                hashes[left_rows], bits_per_key=_SHARD_FILTER_BITS)
            right_filter = NegativeFilter.build(
                hashes[right_rows], bits_per_key=_SHARD_FILTER_BITS)
        new_filters = (self.filters[:ordinal] + [left_filter, right_filter]
                       + self.filters[ordinal + 1:])
        self._swap_topology(new_router, new_shards, new_filters)
        shard.aux.drop_storage()
        return cut

    def merge_shards(
        self,
        ordinal: int,
        config: Optional[DeepMappingConfig] = None,
    ) -> None:
        """Merge range shards ``ordinal`` and ``ordinal + 1`` into one.

        The pair's live rows rebuild as a single DeepMapping (``config``
        optionally overrides its build configuration); merging two empty
        shards just removes the boundary.  The router (minus the boundary
        cut) and the shard list swap in atomically; both retired shards'
        aux partitions are dropped.  Runs under the store's single-writer
        mutation contract.
        """
        self._require_writable()
        router = self._require_range_router()
        if not 0 <= ordinal < router.n_shards - 1:
            raise ValueError(
                f"cannot merge shard {ordinal} with its right neighbour "
                f"in a {router.n_shards}-shard store"
            )
        first = self.shards[ordinal]
        second = self.shards[ordinal + 1]
        tables = [s.to_table() for s in (first, second)
                  if s is not None and len(s)]
        merged: Optional[DeepMapping] = None
        merged_filter: Optional[NegativeFilter] = None
        if tables:
            combined = tables[0] if len(tables) == 1 else tables[0].concat(
                tables[1])
            merged = DeepMapping.fit(
                combined,
                config if config is not None
                else self._build_config(combined.n_rows),
                pool=self.pool, stats=self.stats,
                aux_name_prefix=self._new_aux_prefix(),
            )
            self._register_shard(merged)
            if self.sharding.negative_filter:
                merged_filter = NegativeFilter.build(hash_key_columns(
                    {name: np.asarray(combined.column(name))
                     for name in self.key_names}, self.key_names),
                    bits_per_key=_SHARD_FILTER_BITS)

        new_router = router.merge_at(ordinal)
        new_shards = (self.shards[:ordinal] + [merged]
                      + self.shards[ordinal + 2:])
        new_filters = (self.filters[:ordinal] + [merged_filter]
                       + self.filters[ordinal + 2:])
        self._swap_topology(new_router, new_shards, new_filters)
        for retired in (first, second):
            if retired is not None:
                retired.aux.drop_storage()

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def to_table(self) -> ColumnTable:
        """Logical content as one ColumnTable (shard order)."""
        tables = [shard.to_table() for shard in self.shards
                  if shard is not None and len(shard)]
        if not tables:
            columns: Dict[str, np.ndarray] = {
                name: np.empty(0, dtype=np.int64) for name in self.key_names
            }
            for name in self.value_names:
                columns[name] = self._placeholder(name, 0)
            return ColumnTable(columns, key=self.key_names, name="sharded")
        merged = tables[0]
        for part in tables[1:]:
            merged = merged.concat(part)
        merged.name = "sharded"
        return merged

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, target: Union[str, StorageBackend]) -> int:
        """Write manifest + per-shard payloads into a store container.

        ``target`` is a directory path, a ``file:// / mem:// / zip://``
        URL, or a :class:`~repro.storage.backends.StorageBackend`
        instance — payload location is fully decoupled from routing.
        Returns total bytes written.  Empty shards are recorded in the
        manifest with no payload blob; payload blobs from a previous save
        that this store no longer references are deleted so a re-save in
        place cannot leave stale shards behind.
        """
        backend = (backend_for_url(target) if isinstance(target, str)
                   else target)
        # Backends that buffer whole-container rewrites (zip) batch the
        # save into one atomic replace instead of one rewrite per blob.
        batch = getattr(backend, "batch", None)
        with (batch() if batch is not None else nullcontext()):
            return self._save_into(backend)

    def _save_into(self, backend: StorageBackend) -> int:
        total = 0
        entries: List[ShardEntry] = []
        filters = self.filters
        with self.stats.timing("io"):
            for ordinal, shard in enumerate(self.shards):
                if shard is None:
                    entries.append(ShardEntry(file=None))
                    continue
                fname = f"shard-{ordinal:04d}.dm"
                nbytes = backend.write_bytes(fname, shard.to_payload())
                filt = filters[ordinal]
                entries.append(ShardEntry(
                    file=fname, n_rows=len(shard), n_bytes=nbytes,
                    filter=filt.to_json() if filt is not None else None))
                total += nbytes

            config_payload = pickle.dumps(self.config,
                                          protocol=pickle.HIGHEST_PROTOCOL)
            total += backend.write_bytes(CONFIG_NAME, config_payload)

        lifecycle: Dict[str, object] = {}
        if self.sharding.lifecycle is not None:
            lifecycle["config"] = self.sharding.lifecycle.to_state()
        if self.engine is not None:
            lifecycle["counters"] = self.engine.summary()

        manifest = ShardManifest(
            router=self.router.to_state(),
            key_names=list(self.key_names),
            value_names=list(self.value_names),
            value_dtypes={name: dtype.str
                          for name, dtype in self._value_dtypes.items()},
            shards=entries,
            sharding={
                "strategy": self.sharding.strategy,
                "n_shards": self.sharding.n_shards,
                "max_workers": self.sharding.max_workers,
                "pool_budget_bytes": self.sharding.pool_budget_bytes,
                "executor": getattr(self.sharding.executor, "name",
                                    self.sharding.executor),
                "on_shard_error": self.sharding.on_shard_error,
                "negative_filter": self.sharding.negative_filter,
                "hedged_reads": self.sharding.hedged_reads,
            },
            lifecycle=lifecycle,
            store_filter=(self._store_filter.to_json()
                          if self._store_filter is not None else None),
            prune_meta=self._export_prune_meta(),
        )
        total += manifest.save_to(backend)

        # A shrunk store (merges, fewer shards) must not leave orphaned
        # payload blobs for a later loader to trip over.
        referenced = {entry.file for entry in entries if entry.file}
        for name in backend.list():
            if (name.startswith("shard-") and name.endswith(".dm")
                    and name not in referenced):
                backend.delete(name)
        # Every blob under this container may have changed (including
        # deletions after a lifecycle split/merge); retire all cached
        # read-only bundles for it at once.
        payload_cache().invalidate_backend(backend)
        return total

    def _export_prune_meta(self) -> Optional[Dict[str, object]]:
        """Manifest (JSON) form of the scalar prune-lane metadata.

        Written at save time so a hydrating loader can run the
        store-filter scalar fast lane — per-column vocab dtype and miss
        filler — without downloading a single shard to rediscover them.
        ``None`` when the scalar lanes do not apply (mixed dtypes or
        fillers, empty shards) or a filler does not survive JSON.
        """
        meta = self._prune_meta(self.shards)
        if not meta["scalar_ok"]:
            return None
        columns: Dict[str, object] = {}
        for c in self.value_names:
            filler = meta["filler"][c]
            if isinstance(filler, np.generic):
                filler = filler.item()
            if not isinstance(filler, (bool, int, float, str)):
                return None
            columns[c] = {"dtype": meta["dtype"][c].str, "filler": filler}
        return {"scalar_ok": True, "columns": columns}

    @staticmethod
    def _prime_prune_meta(store: "ShardedDeepMapping",
                          manifest: ShardManifest) -> None:
        """Install save-time prune metadata on a hydrating store.

        Without this, the first lookup's :meth:`_prune_meta` pass would
        touch every shard's decoder — hydrating the whole store to
        answer an all-miss batch.  Metadata that is absent or does not
        match the schema is simply ignored (the general prune lane
        still works; it just hydrates the shards it routes into).
        """
        meta = manifest.prune_meta
        if not meta or not meta.get("scalar_ok"):
            return
        columns = meta.get("columns") or {}
        if set(columns) != set(store.value_names):
            return
        try:
            dtype = {c: np.dtype(columns[c]["dtype"]) for c in columns}
            filler = {c: dtype[c].type(columns[c]["filler"])
                      for c in columns}
        except (KeyError, TypeError, ValueError):
            return
        store._prune_meta_cache = (store.shards, {
            "scalar_ok": True, "filler": filler, "dtype": dtype})

    @classmethod
    def load(
        cls,
        target: Union[str, StorageBackend],
        stats: Optional[StoreStats] = None,
        max_workers: Optional[int] = None,
        pool_budget_bytes: Optional[int] = None,
        executor: Union[str, ExecutorStrategy, None] = None,
        writable: bool = True,
        negative_filter: Optional[bool] = None,
    ) -> "ShardedDeepMapping":
        """Inverse of :meth:`save`; ``target`` as there.

        ``max_workers`` / ``pool_budget_bytes`` / ``executor`` override
        the saved knobs (e.g. load a store built on a big box onto a
        small one, or force serial fan-out).  All shards' auxiliary
        partitions share one
        :class:`~repro.storage.buffer_pool.BufferPool` under the budget.
        ``negative_filter=False`` ignores any persisted per-shard
        filters (and stops new ones being built) — the unpruned
        baseline the parity suite and ``benchmarks/bench_prune.py``
        compare against; ``None`` keeps the saved knob.

        ``writable=False`` opens every shard read-only through the
        process-wide payload cache: payload arrays are zero-copy views
        (mmap-backed on local directories), repeated opens of unchanged
        blobs share one deserialized bundle per shard (including its
        compiled lookup kernel and built aux partitions), and mutating
        calls raise ``PermissionError``.  Cached shards keep the buffer
        pool of their *first* (cold) open, so ``pool_budget_bytes``
        overrides only apply to shards loaded cold.

        Remote backends (``http://`` family — anything flagging
        ``remote = True``) open **hydrating**: the load fetches only
        the manifest and the build config, every shard comes up as a
        :class:`~repro.storage.hydration.LazyShard` proxy that
        downloads its payload on first routed touch, and ``writable``
        is forced to ``False`` (the transport refuses writes anyway).
        See ``docs/remote.md``.
        """
        backend = (backend_for_url(target, create=False)
                   if isinstance(target, str) else target)
        hydrating = bool(getattr(backend, "remote", False))
        if hydrating:
            writable = False
        manifest = ShardManifest.load_from(backend)
        router = router_from_state(manifest.router)
        config: DeepMappingConfig = pickle.loads(
            backend.read_bytes(CONFIG_NAME))

        saved = manifest.sharding
        lifecycle_state = manifest.lifecycle.get("config")
        sharding = ShardingConfig(
            n_shards=manifest.n_shards,
            strategy=saved.get("strategy", router.kind),
            max_workers=(max_workers if max_workers is not None
                         else saved.get("max_workers")),
            pool_budget_bytes=(pool_budget_bytes if pool_budget_bytes is not None
                               else saved.get("pool_budget_bytes")),
            executor=(executor if executor is not None
                      else saved.get("executor")),
            lifecycle=(LifecycleConfig.from_state(lifecycle_state)
                       if lifecycle_state else None),
            on_shard_error=saved.get("on_shard_error", "raise"),
            # Manifests written before the pruning tier default to True:
            # they simply carry no filters (entries lack the field), so
            # nothing prunes until a mutation/rebuild grows filters.
            negative_filter=(negative_filter if negative_filter is not None
                             else saved.get("negative_filter", True)),
            # Pre-hedging manifests lack the field: hedging stays off.
            hedged_reads=saved.get("hedged_reads", False),
        )
        stats = stats if stats is not None else StoreStats()
        # Remote transports accumulate range/hydration counters; point
        # them at this store's sink so `store.stats` (and the serving
        # tier's snapshot bracket) sees them.
        bind_stats = getattr(backend, "bind_stats", None)
        if bind_stats is not None:
            bind_stats(stats)
        pool = BufferPool(budget_bytes=sharding.pool_budget_bytes,
                          stats=stats)
        filters: List[Optional[NegativeFilter]] = [
            (NegativeFilter.from_json(entry.filter)
             if sharding.negative_filter and entry.filter is not None
             else None)
            for entry in manifest.shards
        ]
        shards: List[Optional[DeepMapping]] = []
        for ordinal, entry in enumerate(manifest.shards):
            if entry.file is None:
                shards.append(None)
                continue
            if hydrating:
                # Nothing is fetched here: the proxy defers the shared
                # open (a ranged container fetch through the payload
                # cache, which also dedupes concurrent hydrations of
                # the same blob) until a batch actually routes into
                # this shard.
                shards.append(LazyShard(
                    functools.partial(
                        DeepMapping._open_shared, backend, entry.file,
                        stats=stats, pool=pool,
                        aux_name_prefix=_aux_prefix(ordinal)),
                    n_rows=entry.n_rows, stats=stats, label=entry.file))
                continue
            if not writable:
                shards.append(DeepMapping._open_shared(
                    backend, entry.file, stats=stats, pool=pool,
                    aux_name_prefix=_aux_prefix(ordinal),
                ))
                continue
            with stats.timing("io"):
                payload = backend.read_bytes(entry.file)
            shards.append(DeepMapping.from_payload(
                payload, pool=pool, stats=stats,
                aux_name_prefix=_aux_prefix(ordinal),
            ))
        value_dtypes = {name: np.dtype(spec)
                        for name, spec in manifest.value_dtypes.items()}
        store_filter = (filter_from_json(manifest.store_filter)
                        if sharding.negative_filter
                        and manifest.store_filter is not None else None)
        store = cls(router, shards, config, sharding,
                    value_names=tuple(manifest.value_names),
                    value_dtypes=value_dtypes, stats=stats, pool=pool,
                    filters=filters, store_filter=store_filter)
        store.writable = writable
        if store.engine is not None and "counters" in manifest.lifecycle:
            store.engine.restore_counters(manifest.lifecycle["counters"])
        if hydrating:
            # Eager engine compilation would iterate (and download)
            # every shard; hydrated shards come out of _open_shared
            # with their compiled kernel already built.  Prime the
            # prune fast lane from the manifest instead, so an
            # all-miss batch is answered with zero shard fetches.
            cls._prime_prune_meta(store, manifest)
        else:
            store.compile_engines()
        return store

    # ------------------------------------------------------------------
    # Input normalization (shared with DeepMapping: identical shapes)
    # ------------------------------------------------------------------
    def _normalize_keys(self, keys: KeysLike) -> Dict[str, np.ndarray]:
        return normalize_keys(keys, self.key_names)

    def _normalize_rows(self, rows: RowsLike) -> Dict[str, np.ndarray]:
        return normalize_rows(rows, self.key_names, self.value_names)

    def _placeholder(self, column: str, size: int) -> np.ndarray:
        """All-miss value array of the recorded dtype."""
        dtype = self._value_dtypes.get(column, np.dtype(object))
        if dtype == object:
            return np.full(size, None, dtype=object)
        return np.zeros(size, dtype=dtype)

    def __repr__(self) -> str:
        live = sum(1 for shard in self.shards if shard is not None)
        return (
            f"ShardedDeepMapping(key={self.key_names}, "
            f"values={list(self.value_names)}, shards={self.n_shards} "
            f"({live} live), strategy={self.sharding.strategy!r}, "
            f"rows={len(self)})"
        )


def _aux_prefix(ordinal: int) -> str:
    """Unique aux-partition blob prefix per shard (shared pool safety)."""
    return f"shard{ordinal:04d}-aux"
