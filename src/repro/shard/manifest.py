"""On-disk manifest for a saved sharded DeepMapping store.

A saved store is a directory::

    store/
      manifest.json     <- this module's concern
      config.pkl        <- pickled DeepMappingConfig (build knobs)
      shard-0000.dm     <- one DeepMapping.save() payload per non-empty shard
      shard-0002.dm        (empty shards have no file; the manifest records
      ...                   them with ``file: null``)

``manifest.json`` is deliberately human-readable JSON: it carries the
router state (strategy + cut points / seed), the key and value schema with
NumPy dtype strings, and a per-shard table of file name / row count / byte
size plus an optional compact negative filter (the miss-pruning tier,
``core/negative_filter.py``).  Everything needed to route a query — and to
reject most miss keys outright — is in the manifest, so a loader can open
shards lazily or on remote storage without unpickling them first.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..resilience.errors import StoreCorruptedError, StoreNotFoundError
from ..storage.backends import LocalDirBackend, StorageBackend

__all__ = ["MANIFEST_NAME", "CONFIG_NAME", "ShardEntry", "ShardManifest",
           "is_sharded_store", "is_sharded_backend"]

MANIFEST_NAME = "manifest.json"
CONFIG_NAME = "config.pkl"

#: Bumped when the directory layout changes incompatibly.
FORMAT = "sharded-deepmapping"
VERSION = 1


@dataclass
class ShardEntry:
    """Manifest record for one shard (``file`` is None for empty shards)."""

    file: Optional[str]
    n_rows: int = 0
    n_bytes: int = 0
    #: Per-shard negative filter (``NegativeFilter.to_json()`` dict) —
    #: the manifest-level miss-pruning tier.  ``None`` for empty shards,
    #: stores saved with the filter knob off, and manifests written
    #: before the tier existed (loaders treat absence as "never prune").
    #: Budget: <= 2 bytes per shard key (see ``docs/sharding.md``).
    filter: Optional[Dict[str, object]] = None

    def to_json(self) -> Dict[str, object]:
        obj: Dict[str, object] = {"file": self.file, "n_rows": self.n_rows,
                                  "n_bytes": self.n_bytes}
        if self.filter is not None:
            obj["filter"] = self.filter
        return obj

    @classmethod
    def from_json(cls, obj: Dict[str, object]) -> "ShardEntry":
        return cls(file=obj["file"], n_rows=int(obj["n_rows"]),
                   n_bytes=int(obj["n_bytes"]), filter=obj.get("filter"))


@dataclass
class ShardManifest:
    """Everything needed to reopen a sharded store."""

    router: Dict[str, object]
    key_names: List[str]
    value_names: List[str]
    #: Column name -> NumPy dtype string (``np.dtype(s)`` round-trips).
    value_dtypes: Dict[str, str]
    shards: List[ShardEntry] = field(default_factory=list)
    #: Sharding knobs worth preserving across save/load (max_workers etc.).
    sharding: Dict[str, object] = field(default_factory=dict)
    #: Lifecycle metadata: ``config`` (a ``LifecycleConfig.to_state()``
    #: dict) and ``counters`` (lifetime rebuild/split/merge totals from
    #: the maintenance engine).  Empty for unmanaged stores; absent in
    #: manifests written before the lifecycle subsystem existed.
    lifecycle: Dict[str, object] = field(default_factory=dict)
    #: Store-level negative filter over the union of every shard's key
    #: set (``NegativeFilter.to_json()`` dict) — tier 1 of the pruning
    #: pass, probed for every batch key *before* any routing.  ``None``
    #: for stores saved with the filter knob off and for manifests
    #: written before the store-level tier existed (loaders then fall
    #: back to the routed per-shard filters, or never prune).
    store_filter: Optional[Dict[str, object]] = None
    #: Scalar prune-lane metadata captured at save time:
    #: ``{"scalar_ok": true, "columns": {name: {"dtype": str,
    #: "filler": scalar}}}``.  Lets a *hydrating* loader (remote
    #: backends, ``storage/hydration.py``) run the store-filter fast
    #: lane — including the all-pruned short circuit — without touching
    #: a single shard payload to learn each column's vocab dtype and
    #: miss filler.  ``None`` (or absent, in manifests written before
    #: lazy hydration existed) simply means the first prune derives the
    #: metadata from hydrated shards as always.
    prune_meta: Optional[Dict[str, object]] = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def to_json(self) -> Dict[str, object]:
        obj = {
            "format": FORMAT,
            "version": VERSION,
            "router": self.router,
            "key_names": list(self.key_names),
            "value_names": list(self.value_names),
            "value_dtypes": dict(self.value_dtypes),
            "shards": [entry.to_json() for entry in self.shards],
            "sharding": dict(self.sharding),
            "lifecycle": dict(self.lifecycle),
        }
        if self.store_filter is not None:
            obj["store_filter"] = self.store_filter
        if self.prune_meta is not None:
            obj["prune_meta"] = self.prune_meta
        return obj

    @classmethod
    def from_json(cls, obj: Dict[str, object]) -> "ShardManifest":
        if obj.get("format") != FORMAT:
            raise ValueError(f"not a {FORMAT} manifest: "
                             f"format={obj.get('format')!r}")
        if int(obj.get("version", -1)) > VERSION:
            raise ValueError(f"manifest version {obj['version']} is newer "
                             f"than supported version {VERSION}")
        return cls(
            router=obj["router"],
            key_names=list(obj["key_names"]),
            value_names=list(obj["value_names"]),
            value_dtypes=dict(obj["value_dtypes"]),
            shards=[ShardEntry.from_json(e) for e in obj["shards"]],
            sharding=dict(obj.get("sharding", {})),
            lifecycle=dict(obj.get("lifecycle", {})),
            store_filter=obj.get("store_filter"),
            prune_meta=obj.get("prune_meta"),
        )

    # ------------------------------------------------------------------
    def save_to(self, backend: StorageBackend) -> int:
        """Write ``manifest.json`` into ``backend``; returns bytes.

        The write rides the backend's atomic-replace guarantee: the
        manifest is the store's root pointer, and a crash mid-write must
        leave either the old manifest or the new one, never a torn blob.
        Note the scope: this protects the *manifest*; re-saving a store in
        place rewrites shard payload blobs first, so a crash between
        payload writes and the manifest swap can leave the old manifest
        pointing at newer payloads.  Save to a fresh container when a
        fully atomic store swap is required.
        """
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        return backend.write_bytes(MANIFEST_NAME, payload.encode("utf-8"))

    def save(self, directory: str) -> int:
        """Write ``manifest.json`` under local ``directory``; returns bytes."""
        return self.save_to(LocalDirBackend(directory))

    @classmethod
    def load_from(cls, backend: StorageBackend) -> "ShardManifest":
        """Read ``manifest.json`` from ``backend``.

        An absent manifest raises :class:`StoreNotFoundError` (a
        ``FileNotFoundError``); unparseable or wrong-format JSON raises
        :class:`StoreCorruptedError` — both name the blob and the URL.
        """
        url = getattr(backend, "url", backend)
        try:
            payload = backend.read_bytes(MANIFEST_NAME)
        except KeyError:
            raise StoreNotFoundError(
                f"no {MANIFEST_NAME} in {url!r}") from None
        try:
            obj = json.loads(payload.decode("utf-8"))
            if not isinstance(obj, dict):
                raise ValueError(f"manifest root is {type(obj).__name__}, "
                                 "expected an object")
            return cls.from_json(obj)
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise StoreCorruptedError(
                f"{MANIFEST_NAME} in {url!r} is corrupt: {exc}") from exc

    @classmethod
    def load(cls, directory: str) -> "ShardManifest":
        """Read ``manifest.json`` from local ``directory``."""
        if not os.path.isdir(directory):
            raise StoreNotFoundError(f"no such store directory: {directory!r}")
        return cls.load_from(LocalDirBackend(directory, create=False))


def is_sharded_store(path: str) -> bool:
    """True when ``path`` is a directory holding a sharded-store manifest."""
    return (os.path.isdir(path)
            and os.path.isfile(os.path.join(path, MANIFEST_NAME)))


def is_sharded_backend(backend: StorageBackend) -> bool:
    """True when ``backend`` holds a sharded-store manifest blob."""
    return backend.exists(MANIFEST_NAME)
