"""Sharded DeepMapping: partition the key domain across independent models.

A single :class:`~repro.core.deep_mapping.DeepMapping` couples one neural
model with one existence vector over the *whole* flattened key domain, which
caps both the dataset size (the bit vector, the model's one-hot input width)
and lookup throughput (one model evaluates every query key).  This package
scales the structure out horizontally:

- :mod:`repro.shard.router` — vectorized key→shard routing policies
  (:class:`RangeShardRouter` over the leading key column,
  :class:`HashShardRouter` over all key columns);
- :mod:`repro.shard.store` — :class:`ShardedDeepMapping`, the N-shard store
  that fans batched lookups out to the owning shards (optionally on a
  thread pool) and merges the results back into input order;
- :mod:`repro.shard.manifest` — the on-disk manifest describing a saved
  sharded store (router state, per-shard files, schema, lifecycle
  metadata).

The write-side lifecycle — retrain policies, range split/merge
rebalancing, per-shard model sizing — lives in :mod:`repro.lifecycle`;
a store opts in by passing ``ShardingConfig(lifecycle=...)``.

Range sharding additionally *shrinks* each shard's key domain, so per-shard
key encodings need fewer one-hot digits and the per-key inference cost drops
— a measurable win even on a single core (see ``benchmarks/bench_sharding``
and ``docs/sharding.md``).
"""

from .manifest import (MANIFEST_NAME, ShardEntry, ShardManifest,
                       is_sharded_backend, is_sharded_store)
from .router import (HashShardRouter, RangeShardRouter, ShardRouter,
                     make_router, router_from_state)
from .store import ShardedDeepMapping, ShardingConfig

__all__ = [
    "ShardedDeepMapping",
    "ShardingConfig",
    "ShardRouter",
    "RangeShardRouter",
    "HashShardRouter",
    "make_router",
    "router_from_state",
    "ShardManifest",
    "ShardEntry",
    "MANIFEST_NAME",
    "is_sharded_store",
    "is_sharded_backend",
]
