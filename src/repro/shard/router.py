"""Key→shard routing policies for the sharded DeepMapping store.

A router maps a batch of (possibly composite) key columns to shard ordinals
in ``[0, n_shards)`` with pure NumPy array arithmetic — no per-key Python
loops, so routing a 100k-key batch costs microseconds, not milliseconds.

Two policies are provided:

- :class:`RangeShardRouter` partitions on the *leading* key column using
  cut points chosen at build time to balance row counts.  Every shard owns
  a contiguous key range, so per-shard key domains (and therefore the
  one-hot digit width of each shard's model input) shrink with the shard
  count.  Keys outside the fitted range route to the first/last shard,
  which keeps inserts of fresh, larger keys well-defined.
- :class:`HashShardRouter` mixes *all* key columns through a splitmix64
  finalizer and takes the result modulo ``n_shards``.  Placement is
  uniform and oblivious to key distribution (good for skewed or adversarial
  leading columns) at the cost of per-shard domains as wide as the global
  one.

Routers are deterministic, picklable via :meth:`ShardRouter.to_state` /
:func:`router_from_state` (plain JSON-friendly dicts, recorded in the store
manifest), and stable across processes.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = [
    "ShardRouter",
    "RangeShardRouter",
    "HashShardRouter",
    "make_router",
    "router_from_state",
]


class ShardRouter:
    """Base class: deterministic vectorized key→shard assignment."""

    #: Registry tag written to / read from router state dicts.
    kind = "base"

    def __init__(self, key_names: Sequence[str], n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not key_names:
            raise ValueError("at least one key column required")
        self.key_names = tuple(key_names)
        self.n_shards = int(n_shards)

    def route(self, key_cols: Dict[str, np.ndarray]) -> np.ndarray:
        """Shard ordinal in ``[0, n_shards)`` for each key row."""
        raise NotImplementedError

    def to_state(self) -> Dict[str, object]:
        """JSON-serializable state (inverse of :func:`router_from_state`)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(key={self.key_names}, "
                f"n_shards={self.n_shards})")


class RangeShardRouter(ShardRouter):
    """Contiguous ranges of the leading key column, one per shard.

    ``cuts`` holds ``n_shards - 1`` ascending boundary values; row ``r``
    routes to ``searchsorted(cuts, leading(r), side="right")``.  Rows that
    share a leading-key value always land in the same shard, so composite
    keys stay well-defined (the leading column is the paper's slowest-
    varying key attribute).
    """

    kind = "range"

    def __init__(self, key_names: Sequence[str], n_shards: int, cuts):
        super().__init__(key_names, n_shards)
        self.cuts = np.asarray(cuts, dtype=np.int64)
        if self.cuts.size != self.n_shards - 1:
            raise ValueError(
                f"expected {self.n_shards - 1} cut points, got {self.cuts.size}"
            )
        if self.cuts.size and np.any(np.diff(self.cuts) < 0):
            raise ValueError("cut points must be ascending")

    @classmethod
    def from_keys(
        cls,
        key_cols: Dict[str, np.ndarray],
        key_names: Sequence[str],
        n_shards: int,
    ) -> "RangeShardRouter":
        """Choose row-balancing cut points from observed leading keys.

        Cut points are picked among the *distinct* leading values and made
        strictly ascending whenever ``n_shards`` distinct values exist:
        naive per-row quantiles degenerate under skew (a hot value
        occupying several quantile positions yields duplicate cuts, and a
        shard boxed between two equal cuts is permanently empty — no key
        can ever route to it).  With fewer distinct values than shards,
        strictness is impossible; each value then gets its own shard and
        the trailing cuts continue past the observed maximum, so the
        surplus shards stay empty but *reachable* by future larger keys.
        """
        leading = np.asarray(key_cols[tuple(key_names)[0]], dtype=np.int64)
        if leading.size == 0:
            raise ValueError("cannot fit a range router on zero rows")
        if n_shards == 1:
            return cls(key_names, 1, np.empty(0, dtype=np.int64))
        uniq, counts = np.unique(leading, return_counts=True)
        n_cuts = n_shards - 1
        if uniq.size >= n_shards:
            # Rows strictly below cut uniq[j] number cum[j - 1]; aim that
            # at each balanced target, then force strict ascent (forward
            # pass) inside the feasible index band [1, uniq.size - 1]
            # (backward pass) so every shard owns at least one live value.
            cum = np.cumsum(counts)
            targets = (np.arange(1, n_shards) * leading.size) / n_shards
            idx = np.searchsorted(cum, targets) + 1
            idx[0] = max(idx[0], 1)
            for i in range(1, n_cuts):
                idx[i] = max(idx[i], idx[i - 1] + 1)
            for i in range(n_cuts - 1, -1, -1):
                idx[i] = min(idx[i], uniq.size - n_cuts + i)
            cuts = uniq[idx]
        else:
            info = np.iinfo(np.int64)
            pad = [min(int(uniq[-1]) + k, info.max)
                   for k in range(1, n_shards - uniq.size + 1)]
            cuts = np.concatenate([uniq[1:],
                                   np.asarray(pad, dtype=np.int64)])
        return cls(key_names, n_shards, cuts)

    def route(self, key_cols: Dict[str, np.ndarray]) -> np.ndarray:
        leading = np.asarray(key_cols[self.key_names[0]], dtype=np.int64)
        if self.cuts.size == 0:
            return np.zeros(leading.size, dtype=np.int64)
        if self.cuts.size <= 8:
            # Few cuts: summed comparisons are one linear pass per cut,
            # several times faster than searchsorted's per-query binary
            # search (which costs ~10ns/key regardless of cut count).
            out = np.zeros(leading.size, dtype=np.int64)
            for cut in self.cuts:
                out += leading >= cut
            return out
        return np.searchsorted(self.cuts, leading, side="right")

    # ------------------------------------------------------------------
    # Lifecycle rebalancing (see repro.lifecycle)
    # ------------------------------------------------------------------
    def bounds_of(self, ordinal: int) -> "tuple":
        """Half-open ``[lower, upper)`` leading-key range a shard owns
        (``None`` marks the unbounded edges)."""
        if not 0 <= ordinal < self.n_shards:
            raise IndexError(f"shard ordinal {ordinal} out of range")
        lower = int(self.cuts[ordinal - 1]) if ordinal > 0 else None
        upper = (int(self.cuts[ordinal])
                 if ordinal < self.n_shards - 1 else None)
        return lower, upper

    def split_at(self, ordinal: int, cut: int) -> "RangeShardRouter":
        """New router with shard ``ordinal`` split at ``cut``.

        The shard's range ``[lower, upper)`` becomes ``[lower, cut)`` at
        ``ordinal`` and ``[cut, upper)`` at ``ordinal + 1``; shards above
        shift up by one.  ``cut`` must lie strictly inside the shard's
        current range.
        """
        lower, upper = self.bounds_of(ordinal)
        cut = int(cut)
        if (lower is not None and cut <= lower) or \
                (upper is not None and cut >= upper):
            raise ValueError(
                f"cut {cut} outside shard {ordinal}'s range "
                f"[{lower}, {upper})"
            )
        cuts = np.insert(self.cuts, ordinal, cut)
        return RangeShardRouter(self.key_names, self.n_shards + 1, cuts)

    def merge_at(self, ordinal: int) -> "RangeShardRouter":
        """New router with shards ``ordinal`` and ``ordinal + 1`` merged
        (the boundary between them removed); shards above shift down."""
        if not 0 <= ordinal < self.n_shards - 1:
            raise ValueError(
                f"cannot merge shard {ordinal} with its right neighbour "
                f"in a {self.n_shards}-shard router"
            )
        cuts = np.delete(self.cuts, ordinal)
        return RangeShardRouter(self.key_names, self.n_shards - 1, cuts)

    def to_state(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key_names": list(self.key_names),
            "n_shards": self.n_shards,
            "cuts": [int(c) for c in self.cuts],
        }


#: splitmix64 finalizer constants (Steele et al.); wraparound is intended.
_MIX_1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_2 = np.uint64(0xC4CEB9FE1A85EC53)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized 64-bit avalanche (murmur3/splitmix64 finalizer)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(33)
    x *= _MIX_1
    x ^= x >> np.uint64(33)
    x *= _MIX_2
    x ^= x >> np.uint64(33)
    return x


class HashShardRouter(ShardRouter):
    """Uniform placement by mixing every key column.

    Each column is avalanched independently (offset by its position times
    the 64-bit golden ratio so symmetric composite keys don't collide) and
    the combined hash is reduced modulo ``n_shards``.
    """

    kind = "hash"

    def __init__(self, key_names: Sequence[str], n_shards: int, seed: int = 0):
        super().__init__(key_names, n_shards)
        self.seed = int(seed)

    def route(self, key_cols: Dict[str, np.ndarray]) -> np.ndarray:
        n = np.asarray(key_cols[self.key_names[0]]).size
        h = np.full(n, np.uint64(self.seed), dtype=np.uint64)
        for i, name in enumerate(self.key_names):
            col = np.asarray(key_cols[name], dtype=np.int64).view(np.uint64)
            offset = np.uint64(((i + 1) * int(_GOLDEN)) & 0xFFFFFFFFFFFFFFFF)
            h ^= _mix64(col + offset)
        return (_mix64(h) % np.uint64(self.n_shards)).astype(np.int64)

    def to_state(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key_names": list(self.key_names),
            "n_shards": self.n_shards,
            "seed": self.seed,
        }


def make_router(
    strategy: str,
    key_cols: Dict[str, np.ndarray],
    key_names: Sequence[str],
    n_shards: int,
) -> ShardRouter:
    """Build a router of the named ``strategy`` over observed keys."""
    if strategy == "range":
        return RangeShardRouter.from_keys(key_cols, key_names, n_shards)
    if strategy == "hash":
        return HashShardRouter(key_names, n_shards)
    raise ValueError(f"unknown sharding strategy {strategy!r}; "
                     "expected 'range' or 'hash'")


def router_from_state(state: Dict[str, object]) -> ShardRouter:
    """Restore a router from :meth:`ShardRouter.to_state` output."""
    kind = state.get("kind")
    if kind == RangeShardRouter.kind:
        return RangeShardRouter(state["key_names"], int(state["n_shards"]),
                                state["cuts"])
    if kind == HashShardRouter.kind:
        return HashShardRouter(state["key_names"], int(state["n_shards"]),
                               int(state.get("seed", 0)))
    raise ValueError(f"unknown router kind {kind!r}")
