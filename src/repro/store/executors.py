"""Pluggable execution strategies for the read path.

The sharded store fans a batched lookup out to its shards, and both store
kinds expose ``lookup_async`` returning a future.  How that concurrency is
realized is a deployment decision, not a store decision, so it lives
behind one small protocol:

- :class:`SerialStrategy` — everything inline on the calling thread
  (debugging, profiling, single-core boxes; ``submit`` still returns a
  future, already resolved).
- :class:`ThreadPoolStrategy` — shard fan-out on a lazily created
  ``ThreadPoolExecutor`` (NumPy kernels release the GIL, so shards
  overlap on multi-core hosts), plus a *separate* small pool for
  ``submit`` so an async lookup coordinating a fan-out can never
  deadlock against its own workers.
- :class:`FreeThreadingStrategy` — a ``ThreadPoolStrategy`` that detects
  free-threaded CPython (PEP 703, ``sys._is_gil_enabled() is False``)
  and widens its default worker count to the full core count, since
  pure-Python sections stop serializing there too.

Strategies are named (``"serial"`` / ``"threads"`` / ``"free-threads"``)
so configs and CLIs can select them by string via :func:`make_executor`.
"""

from __future__ import annotations

import os
import sys
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Protocol, Union, \
    runtime_checkable

from ..resilience.deadline import Deadline

__all__ = [
    "ExecutorStrategy",
    "SerialStrategy",
    "ThreadPoolStrategy",
    "FreeThreadingStrategy",
    "EXECUTOR_NAMES",
    "make_executor",
    "gil_enabled",
]


def _deadline_gated(fn: Callable, deadline: Optional[Deadline]) -> Callable:
    """Wrap ``fn`` so it refuses to *start* past its deadline.

    The gate runs on the worker at dequeue time: when a caller has
    already abandoned a timed-out batch, its queued jobs collapse to an
    immediate :class:`DeadlineExceeded` instead of occupying a lane with
    work nobody will read — the difference between a slow burst and a
    wedged coordinator under sustained overload.
    """
    if deadline is None:
        return fn

    def gated(*args, **kwargs):
        deadline.check("queued job")
        return fn(*args, **kwargs)

    return gated


def gil_enabled() -> bool:
    """True on a GIL-ful interpreter (every CPython before free threading)."""
    checker = getattr(sys, "_is_gil_enabled", None)
    return True if checker is None else bool(checker())


@runtime_checkable
class ExecutorStrategy(Protocol):
    """How a store runs independent jobs and services async lookups."""

    #: Stable name configs/CLIs select the strategy by.
    name: str

    def map(self, fn: Callable, jobs: Iterable) -> List:
        """Run ``fn`` over ``jobs``, returning results in job order."""
        ...

    def submit(self, fn: Callable, *args, **kwargs) -> "Future":
        """Schedule ``fn(*args, **kwargs)``; return a future of its result."""
        ...

    def close(self) -> None:
        """Release any worker threads (idempotent)."""
        ...

    # NOTE: the built-in strategies additionally provide
    # ``submit_job(fn, *args, deadline=None) -> Future`` — a per-job
    # handle on the *fan-out* lane (``submit`` targets the coordinator
    # lane), used by the sharded store's pipelined lookup to stream
    # per-shard results as they finish.  It is a capability rather than
    # part of this protocol so pre-existing custom strategies keep
    # satisfying ``isinstance(..., ExecutorStrategy)``; stores fall back
    # to the barrier path when it is absent.  Both lanes accept an
    # optional ``deadline`` keyword: a job still queued when its
    # deadline passes fails with ``DeadlineExceeded`` the moment a
    # worker picks it up, so abandoned work cannot wedge a lane.


class SerialStrategy:
    """Run everything inline on the calling thread."""

    name = "serial"

    def map(self, fn: Callable, jobs: Iterable) -> List:
        return [fn(job) for job in jobs]

    def submit(self, fn: Callable, *args,
               deadline: Optional[Deadline] = None, **kwargs) -> Future:
        fn = _deadline_gated(fn, deadline)
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # the future carries the failure
            future.set_exception(exc)
        return future

    def submit_job(self, fn: Callable, *args,
                   deadline: Optional[Deadline] = None) -> Future:
        """Fan-out-lane job future (inline here; already resolved)."""
        return self.submit(fn, *args, deadline=deadline)

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "SerialStrategy()"


class ThreadPoolStrategy:
    """Fan out on a lazily created thread pool.

    ``map`` jobs run on the fan-out pool (inline when there is at most
    one job or one worker — matching the sharded store's historical
    short-circuit).  ``submit`` runs on a separate two-thread coordinator
    pool: an async lookup submitted there can safely ``map`` its shard
    jobs onto the fan-out pool without the two competing for the same
    workers (the classic nested-pool deadlock).
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None,
                 thread_name_prefix: str = "repro-exec"):
        self.max_workers = (max(1, int(max_workers))
                            if max_workers is not None
                            else self._default_workers())
        self._prefix = thread_name_prefix
        self._pool: Optional[ThreadPoolExecutor] = None
        self._coordinator: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    @staticmethod
    def _default_workers() -> int:
        return max(1, min(32, os.cpu_count() or 1))

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self._prefix)
            return self._pool

    def _get_coordinator(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._coordinator is None:
                self._coordinator = ThreadPoolExecutor(
                    max_workers=2,
                    thread_name_prefix=self._prefix + "-async")
            return self._coordinator

    def map(self, fn: Callable, jobs: Iterable) -> List:
        jobs = list(jobs)
        if len(jobs) <= 1 or self.max_workers <= 1:
            return [fn(job) for job in jobs]
        return list(self._get_pool().map(fn, jobs))

    def submit(self, fn: Callable, *args,
               deadline: Optional[Deadline] = None, **kwargs) -> Future:
        return self._get_coordinator().submit(
            _deadline_gated(fn, deadline), *args, **kwargs)

    def submit_job(self, fn: Callable, *args,
                   deadline: Optional[Deadline] = None) -> Future:
        """One fan-out job as a future (the pipelined-lookup lane).

        Jobs land on the same pool ``map`` uses, so inference for one
        shard overlaps aux decompression for another; with a single
        worker the job runs inline (same short-circuit as ``map``),
        avoiding thread ping-pong on one-core hosts.  Job functions must
        never block on sibling futures — the sharded store's jobs
        scatter into shared output arrays and return.  A ``deadline``
        makes the job a no-op (``DeadlineExceeded``) if it is still
        queued when the budget runs out — and disables the one-worker
        inline shortcut, because a deadline only isolates the caller
        from a hung job when the job runs on a thread the caller can
        abandon.
        """
        fn = _deadline_gated(fn, deadline)
        if self.max_workers <= 1 and deadline is None:
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:
                future.set_exception(exc)
            return future
        return self._get_pool().submit(fn, *args)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            coordinator, self._coordinator = self._coordinator, None
        if pool is not None:
            pool.shutdown(wait=True)
        if coordinator is not None:
            coordinator.shutdown(wait=True)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class FreeThreadingStrategy(ThreadPoolStrategy):
    """Thread pool sized for free-threaded CPython.

    On a no-GIL build the pure-Python routing/merge sections parallelize
    too, so the default width is the full core count rather than the
    conservative shared-pool default.  On a GIL-ful interpreter it behaves
    exactly like :class:`ThreadPoolStrategy` (NumPy still releases the
    GIL inside kernels), so selecting it is always safe.
    """

    name = "free-threads"

    def __init__(self, max_workers: Optional[int] = None,
                 thread_name_prefix: str = "repro-freethread"):
        self.gil_enabled = gil_enabled()
        if max_workers is None and not self.gil_enabled:
            max_workers = os.cpu_count() or 1
        super().__init__(max_workers=max_workers,
                         thread_name_prefix=thread_name_prefix)


#: Selectable strategy names, in documentation order.
EXECUTOR_NAMES = ("serial", "threads", "free-threads")

_FACTORIES = {
    "serial": lambda max_workers: SerialStrategy(),
    "threads": ThreadPoolStrategy,
    "free-threads": FreeThreadingStrategy,
}


def make_executor(spec: Union[str, ExecutorStrategy, None] = None,
                  max_workers: Optional[int] = None) -> ExecutorStrategy:
    """Resolve a strategy from a name, an instance, or ``None``.

    ``None`` means the default: a thread pool (width ``max_workers``),
    degrading to serial execution when ``max_workers`` is 1.  A strategy
    instance passes through untouched (caller keeps ownership).
    """
    if spec is None:
        spec = "threads"
    if isinstance(spec, str):
        try:
            factory = _FACTORIES[spec]
        except KeyError:
            names = ", ".join(repr(n) for n in EXECUTOR_NAMES)
            raise ValueError(f"unknown executor strategy {spec!r}; "
                             f"expected one of {names}") from None
        return factory(max_workers)
    if isinstance(spec, ExecutorStrategy):
        return spec
    raise TypeError(f"executor must be a strategy name, an ExecutorStrategy "
                    f"instance, or None; got {type(spec).__name__}")
