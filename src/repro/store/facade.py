"""`repro.open()` / `repro.build()`: the unified front door.

One store URL (or bare path) names any persisted store:

- ``orders.dm`` / ``file:///data/orders.dm`` — a monolithic
  :class:`~repro.core.deep_mapping.DeepMapping` payload file;
- ``store/`` / ``file:///data/store`` — a sharded store directory
  (``manifest.json`` + per-shard payloads);
- ``mem://name`` — a process-local in-memory container (tests, scratch);
- ``zip:///data/store.zip`` — all blobs in one zip archive (the
  object-store stand-in);
- ``http://host/store`` / ``https://...`` — a store published behind
  any range-capable HTTP server, opened read-only with lazy shard
  hydration; ``cached+http://`` adds a local disk cache tier so warm
  reopens are pure local mmap (``docs/remote.md``).

:func:`open_store` resolves the URL to a backend, sniffs whether it holds
a sharded manifest or a monolithic payload (the auto-detection that used
to live privately in the CLI), and returns the matching
:class:`~repro.store.protocol.DataStore`.  :func:`build_store` is the
forward direction: fit a store over a table — monolithic by default,
sharded when a sharding config (or shard count) is given — and optionally
persist it to a URL in the same breath.

Both are re-exported as :func:`repro.open` and :func:`repro.build`.
"""

from __future__ import annotations

import pickle
import zipfile
from typing import Optional, Union

from ..resilience.errors import StoreCorruptedError, StoreNotFoundError
from ..storage.backends import (MONOLITHIC_BLOB, URL_SCHEMES, LocalDirBackend,
                                ZipBackend, backend_for_url, parse_url)
from .executors import ExecutorStrategy
from .protocol import DataStore

__all__ = ["open_store", "build_store", "serving", "describe_target"]

#: Blob name that marks a container as a sharded store (mirrors
#: ``repro.shard.manifest.MANIFEST_NAME``; duplicated here so the facade
#: stays importable without triggering the shard package's import chain).
_MANIFEST_BLOB = "manifest.json"


def _schemes_note() -> str:
    accepted = ", ".join(f"{scheme}://" for scheme in URL_SCHEMES)
    return (f"accepted URL schemes: {accepted} (a bare path is file://); "
            "a store is a .dm payload file or a container holding "
            f"'{_MANIFEST_BLOB}' (sharded) or '{MONOLITHIC_BLOB}' "
            "(monolithic)")


def describe_target(url_or_path: str):
    """Classify a store target: ``(backend, blob_or_None, kind)``.

    ``kind`` is ``"sharded"`` (container with a manifest), ``"monolithic"``
    (single payload blob), or ``"absent"`` (nothing there yet — the write
    side may create it).  Raises ``ValueError`` for unknown URL schemes.
    """
    import os

    scheme, path = parse_url(url_or_path)
    if scheme == "file":
        if os.path.isdir(path):
            backend = LocalDirBackend(path, create=False)
            if backend.exists(_MANIFEST_BLOB):
                return backend, None, "sharded"
            if backend.exists(MONOLITHIC_BLOB):
                return backend, MONOLITHIC_BLOB, "monolithic"
            return backend, None, "absent"
        if os.path.isfile(path):
            if zipfile.is_zipfile(path):
                # A zip-store addressed by bare path (zip:// omitted):
                # classify by the archive's contents, not as a payload.
                return _classify_container(ZipBackend(path))
            directory, blob = os.path.split(path)
            return LocalDirBackend(directory or ".", create=False), blob, \
                "monolithic"
        return None, None, "absent"
    return _classify_container(backend_for_url(url_or_path, create=False))


def _classify_container(backend):
    if backend.exists(_MANIFEST_BLOB):
        return backend, None, "sharded"
    if backend.exists(MONOLITHIC_BLOB):
        return backend, MONOLITHIC_BLOB, "monolithic"
    return backend, None, "absent"


def open_store(
    url_or_path: str,
    *,
    stats=None,
    max_workers: Optional[int] = None,
    pool_budget_bytes: Optional[int] = None,
    executor: Union[str, ExecutorStrategy, None] = None,
    writable: bool = True,
) -> DataStore:
    """Open a persisted store — monolithic or sharded — by URL or path.

    Parameters
    ----------
    url_or_path:
        ``file://`` / ``mem://`` / ``zip://`` URL, or a bare filesystem
        path (a ``.dm`` file or a sharded store directory).
    stats:
        Optional shared :class:`~repro.storage.stats.StoreStats` sink.
    max_workers / pool_budget_bytes:
        Sharded stores only: override the saved fan-out width / shared
        buffer-pool budget (e.g. reopen a big-box store on a laptop).
    executor:
        Executor strategy for fan-out and ``lookup_async`` — a name from
        :data:`repro.store.EXECUTOR_NAMES` or an
        :class:`~repro.store.executors.ExecutorStrategy` instance.
    writable:
        ``False`` opens the store read-only through the process-wide
        payload cache: payload arrays come up as zero-copy views
        (mmap-backed on local directories), repeated opens of the same
        unchanged store skip deserialization entirely, and mutating
        calls (``insert`` / ``delete`` / ``update`` / ``rebuild``)
        raise ``PermissionError``.  The default keeps every component
        private and mutable.  Remote targets (``http://`` /
        ``https://`` / ``cached+http://``) are *always* opened
        read-only — the transport refuses writes — and sharded remote
        opens hydrate shards lazily on first routed touch (see
        ``docs/remote.md``).
    """
    from ..core.deep_mapping import DeepMapping
    from ..shard.store import ShardedDeepMapping

    backend, blob, kind = describe_target(url_or_path)
    if kind == "sharded":
        return ShardedDeepMapping.load(
            backend, stats=stats, max_workers=max_workers,
            pool_budget_bytes=pool_budget_bytes, executor=executor,
            writable=writable)
    if kind == "monolithic":
        try:
            if writable and not getattr(backend, "remote", False):
                store = DeepMapping.from_payload(backend.read_bytes(blob),
                                                 stats=stats)
            else:
                # Read-only request, or a remote backend (which cannot
                # accept writes): share the deserialized bundle through
                # the payload cache and keep the payload a view.
                store = DeepMapping._open_shared(backend, blob, stats=stats)
        except StoreCorruptedError:
            # A recognized container that fails its checksums (or is
            # truncated) is *damage*, not a wrong-format target — let the
            # typed error through so operators can tell the two apart.
            raise
        except (pickle.UnpicklingError, EOFError):
            raise ValueError(
                f"{url_or_path!r} exists but does not hold a DeepMapping "
                f"payload; {_schemes_note()}") from None
        if executor is not None:
            # Pass the raw spec through: set_executor owns strategies it
            # builds from names and leaves caller instances caller-owned.
            store.set_executor(executor)
        return store
    raise StoreNotFoundError(
        f"no store at {url_or_path!r}; {_schemes_note()}")


def build_store(
    table,
    config=None,
    *,
    sharding=None,
    shards: Optional[int] = None,
    url: Optional[str] = None,
    stats=None,
) -> DataStore:
    """Fit a store over ``table``; optionally persist it to ``url``.

    Monolithic by default; pass ``sharding=ShardingConfig(...)`` (or the
    ``shards=N`` shorthand) for a sharded store.  When ``url`` is given
    the fitted store is saved there before being returned, so
    ``repro.open(url)`` round-trips it.
    """
    from ..core.deep_mapping import DeepMapping
    from ..shard.store import ShardedDeepMapping, ShardingConfig

    if sharding is not None and shards is not None \
            and shards != sharding.n_shards:
        raise ValueError(
            f"conflicting shard counts: shards={shards} vs "
            f"sharding.n_shards={sharding.n_shards}")
    if sharding is None and shards is not None and shards > 1:
        sharding = ShardingConfig(n_shards=shards)

    if sharding is not None:
        store: DataStore = ShardedDeepMapping.fit(table, config, sharding,
                                                  stats=stats)
    else:
        store = DeepMapping.fit(table, config, stats=stats)
    if url is not None:
        store.save(url)
    return store


def serving(
    target,
    *,
    policy=None,
    stats=None,
    shedder=None,
    executor: Union[str, ExecutorStrategy, None] = None,
    max_workers: Optional[int] = None,
    pool_budget_bytes: Optional[int] = None,
):
    """A coalescing serving handle over a store: the third facade verb.

    ``open`` reads, ``build`` writes, ``serving`` *serves*: many caller
    threads share one :class:`~repro.serve.server.Client` whose
    :class:`~repro.serve.server.LookupServer` merges their small
    concurrent lookups into fused batches (see :mod:`repro.serve` and
    ``docs/serving.md``).

    ``target`` is a store URL/path — opened read-only through the shared
    payload cache, and closed again by ``Client.close()`` — or an
    already-open :class:`~repro.store.protocol.DataStore`, which stays
    caller-owned.  ``policy`` is an
    :class:`~repro.serve.policy.AdmissionPolicy` (default: 8192 keys /
    2 ms); ``stats`` an optional shared
    :class:`~repro.serve.stats.ServeStats` sink; ``shedder`` an
    optional :class:`~repro.serve.shedding.LoadShedder` for adaptive
    overload control (off by default).
    """
    from ..serve.server import Client
    from .protocol import DataStore as _DataStore

    if isinstance(target, str):
        store = open_store(target, max_workers=max_workers,
                           pool_budget_bytes=pool_budget_bytes,
                           executor=executor, writable=False)
        return Client(store, policy=policy, stats=stats, shedder=shedder,
                      close_store=True)
    if isinstance(target, _DataStore):
        if executor is not None:
            target.set_executor(executor)
        return Client(target, policy=policy, stats=stats, shedder=shedder,
                      close_store=False)
    raise TypeError("serving() takes a store URL/path or an open DataStore; "
                    f"got {type(target).__name__}")
