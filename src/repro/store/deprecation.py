"""Warn-once plumbing for deprecated entry points.

The unified-store redesign keeps every pre-facade entry point working
(direct ``DeepMapping.load``, the CLI's bare-path dispatch) behind thin
shims.  Each shim announces itself with a ``DeprecationWarning`` exactly
once per process — loud enough to steer migrations, quiet enough not to
flood a loop that opens a thousand stores.
"""

from __future__ import annotations

import threading
import warnings
from typing import Set

__all__ = ["warn_once", "reset_warnings"]

_warned: Set[str] = set()
_lock = threading.Lock()


def warn_once(key: str, message: str) -> bool:
    """Emit ``DeprecationWarning`` for ``key`` the first time it is seen.

    Returns True when the warning fired (first call for this key since
    process start or :func:`reset_warnings`).
    """
    with _lock:
        if key in _warned:
            return False
        _warned.add(key)
    # stacklevel 3: warn_once -> shim -> the caller being steered.
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    return True


def reset_warnings() -> None:
    """Forget which deprecations already fired (testing hook)."""
    with _lock:
        _warned.clear()
