"""Unified store API: one protocol, one facade, pluggable everything.

This package is the public way to use the library:

- :func:`repro.store.open_store` / :func:`repro.store.build_store` —
  re-exported as :func:`repro.open` / :func:`repro.build` — open or fit a
  store addressed by URL (``file://``, ``mem://``, ``zip://``) or bare
  path, auto-detecting monolithic vs sharded layouts;
- :class:`DataStore` — the structural protocol both
  :class:`~repro.DeepMapping` and :class:`~repro.ShardedDeepMapping`
  satisfy (locked by ``tests/api/test_public_surface.py``);
- :class:`~repro.storage.backends.StorageBackend` and its
  local-directory / in-memory / zip implementations — where payloads
  live, fully decoupled from how queries route;
- :class:`ExecutorStrategy` — how lookups fan out and how
  ``lookup_async`` schedules (serial / thread pool / free-threading
  aware).

See ``docs/api.md`` for the full tour and the old→new migration table.
"""

from ..storage.backends import (MONOLITHIC_BLOB, URL_SCHEMES, InMemoryBackend,
                                LocalDirBackend, StorageBackend, ZipBackend,
                                backend_for_url, parse_url, resolve_blob_url)
from .deprecation import reset_warnings, warn_once
from .executors import (EXECUTOR_NAMES, ExecutorStrategy,
                        FreeThreadingStrategy, SerialStrategy,
                        ThreadPoolStrategy, gil_enabled, make_executor)
from .facade import build_store, describe_target, open_store, serving
from .protocol import DataStore

__all__ = [
    "DataStore",
    "open_store",
    "build_store",
    "serving",
    "describe_target",
    "StorageBackend",
    "LocalDirBackend",
    "InMemoryBackend",
    "ZipBackend",
    "backend_for_url",
    "resolve_blob_url",
    "parse_url",
    "URL_SCHEMES",
    "MONOLITHIC_BLOB",
    "ExecutorStrategy",
    "SerialStrategy",
    "ThreadPoolStrategy",
    "FreeThreadingStrategy",
    "EXECUTOR_NAMES",
    "make_executor",
    "gil_enabled",
    "warn_once",
    "reset_warnings",
]
