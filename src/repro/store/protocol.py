"""The ``DataStore`` protocol: the one public surface of every store.

:class:`~repro.core.deep_mapping.DeepMapping` (monolithic) and
:class:`~repro.shard.store.ShardedDeepMapping` (horizontally sharded) both
satisfy this protocol, so everything above the store — the CLI, the bench
harness, the SELECT layer, user code — can be written once against
``DataStore`` and handed either implementation by
:func:`repro.open` / :func:`repro.build`.

The protocol is structural (:func:`typing.runtime_checkable`):
``isinstance(obj, DataStore)`` verifies the surface is present without
either class inheriting anything.  Its exact method set and signatures
are locked by ``tests/api/test_public_surface.py`` — changing this file
is an API change and must be deliberate.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["DataStore"]


@runtime_checkable
class DataStore(Protocol):
    """Learned, lossless, updateable key→value store.

    Lifecycle: build with the implementation's ``fit`` classmethod (or
    :func:`repro.build`), reopen with :func:`repro.open`, and ``close()``
    when done — stores are context managers, so ``with repro.open(url)
    as store:`` does the right thing.
    """

    # -- schema / introspection -------------------------------------------
    @property
    def key_names(self) -> Tuple[str, ...]:
        """Key column names, in key order."""
        ...

    @property
    def value_names(self) -> Tuple[str, ...]:
        """Value column names."""
        ...

    def __len__(self) -> int:
        """Number of live keys."""
        ...

    def size_report(self):
        """Storage breakdown (model / aux / existence / decode bytes)."""
        ...

    def aux_ratio(self) -> float:
        """Fraction of live rows currently served from auxiliary tables."""
        ...

    # -- reads -------------------------------------------------------------
    def lookup(self, keys) -> "LookupResult":
        """Batched exact-match lookup, input order preserved."""
        ...

    def lookup_one(self, **key_parts) -> Optional[Dict[str, object]]:
        """Single-key convenience lookup; a row dict, or None for a miss."""
        ...

    def lookup_async(self, keys) -> Future:
        """Schedule :meth:`lookup` on the store's executor strategy;
        returns a future resolving to the same :class:`LookupResult`."""
        ...

    def contains_batch(self, keys) -> np.ndarray:
        """Boolean existence mask for a key batch (no value inference)."""
        ...

    # -- writes ------------------------------------------------------------
    def insert(self, rows) -> int:
        """Insert new rows (all-or-nothing); returns rows landed in aux."""
        ...

    def delete(self, keys) -> int:
        """Delete keys; absent keys are ignored.  Returns rows removed."""
        ...

    def update(self, rows) -> int:
        """Replace values of existing keys (all-or-nothing)."""
        ...

    def rebuild(self, config=None) -> None:
        """Retrain model(s) and reconstruct auxiliary structures from the
        current logical content."""
        ...

    # -- persistence / lifecycle -------------------------------------------
    def save(self, target) -> int:
        """Persist to a path or ``file:// / mem:// / zip://`` URL;
        returns bytes written."""
        ...

    def close(self) -> None:
        """Release executors and other runtime resources (idempotent)."""
        ...

    def __enter__(self) -> "DataStore":
        ...

    def __exit__(self, *exc) -> None:
        ...
