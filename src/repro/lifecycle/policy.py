"""Maintenance policies: when does a shard earn a retrain?

The paper's lazy-update discussion (Sec. IV-D) retrains once accumulated
modifications pass a byte threshold (the evaluation's DM-Z1 retrains after
200MB).  The learned-compression literature since (Liu et al. 2024) frames
update handling as a *policy* problem — different workloads want different
triggers — so the engine takes the trigger as a pluggable object:

- :class:`BytesThresholdPolicy` — the paper's DM-Z1 rule: retrain after N
  modified bytes;
- :class:`AuxRatioPolicy` — retrain when the auxiliary table serves more
  than a fraction of live rows (bounds the compression regression between
  retrains directly, instead of through a byte proxy);
- :class:`NeverPolicy` — accumulate forever (modifications stay absorbed
  in ``T_aux``; the operator retrains explicitly).

Policies judge a :class:`ShardStats` snapshot, so they are trivially
testable and independent of the store/engine layers.  This module is
dependency-free on purpose: both :mod:`repro.core` and
:mod:`repro.shard` may import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

__all__ = [
    "ShardStats",
    "MaintenancePolicy",
    "BytesThresholdPolicy",
    "AuxRatioPolicy",
    "NeverPolicy",
    "make_policy",
    "POLICY_NAMES",
    "LifecycleConfig",
]

POLICY_NAMES = ("bytes", "aux-ratio", "never")


@dataclass
class ShardStats:
    """What a policy may look at when judging one shard."""

    ordinal: int
    n_rows: int
    aux_rows: int
    bytes_since_build: int
    ops_since_build: int

    @property
    def aux_ratio(self) -> float:
        """Fraction of live rows served from the auxiliary table."""
        if self.n_rows == 0:
            return 0.0
        return self.aux_rows / self.n_rows


class MaintenancePolicy:
    """Base class: decide whether a shard should retrain now."""

    name = "base"

    def should_retrain(self, stats: ShardStats) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BytesThresholdPolicy(MaintenancePolicy):
    """Retrain after ``threshold_bytes`` of modifications (DM-Z1)."""

    name = "bytes"

    def __init__(self, threshold_bytes: Optional[int]):
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("threshold_bytes must be positive or None")
        self.threshold_bytes = threshold_bytes

    def should_retrain(self, stats: ShardStats) -> bool:
        if self.threshold_bytes is None:
            return False
        return stats.bytes_since_build >= self.threshold_bytes

    def __repr__(self) -> str:
        return f"BytesThresholdPolicy(threshold={self.threshold_bytes})"


class AuxRatioPolicy(MaintenancePolicy):
    """Retrain when ``len(T_aux) / n_rows`` exceeds ``max_ratio``.

    ``min_rows`` keeps freshly materialized micro-shards (whose first few
    rows all sit in the aux table) from thrashing through retrains.
    """

    name = "aux-ratio"

    def __init__(self, max_ratio: float, min_rows: int = 64):
        if not 0 < max_ratio <= 1:
            raise ValueError("max_ratio must be in (0, 1]")
        self.max_ratio = float(max_ratio)
        self.min_rows = int(min_rows)

    def should_retrain(self, stats: ShardStats) -> bool:
        if stats.n_rows < self.min_rows:
            return False
        return stats.aux_ratio >= self.max_ratio

    def __repr__(self) -> str:
        return (f"AuxRatioPolicy(max_ratio={self.max_ratio}, "
                f"min_rows={self.min_rows})")


class NeverPolicy(MaintenancePolicy):
    """Accumulate modifications forever; retrains are explicit only."""

    name = "never"

    def should_retrain(self, stats: ShardStats) -> bool:
        return False


def make_policy(
    name: str,
    threshold_bytes: Optional[int] = None,
    aux_ratio: float = 0.5,
    min_rows: int = 64,
) -> MaintenancePolicy:
    """Build a policy by registry name (see :data:`POLICY_NAMES`)."""
    if name == BytesThresholdPolicy.name:
        return BytesThresholdPolicy(threshold_bytes)
    if name == AuxRatioPolicy.name:
        return AuxRatioPolicy(aux_ratio, min_rows=min_rows)
    if name == NeverPolicy.name:
        return NeverPolicy()
    raise ValueError(f"unknown maintenance policy {name!r}; "
                     f"expected one of {POLICY_NAMES}")


@dataclass
class LifecycleConfig:
    """Knobs of the maintenance engine (policy + rebalancing + sizing).

    All fields are JSON-serializable scalars so the config round-trips
    through the store manifest (:meth:`to_state` / :meth:`from_state`).
    """

    #: Retrain policy name: ``"bytes"``, ``"aux-ratio"`` or ``"never"``.
    policy: str = "bytes"
    #: Byte threshold for the ``bytes`` policy; ``None`` falls back to the
    #: build config's ``retrain_threshold_bytes``.
    retrain_bytes: Optional[int] = None
    #: Aux-table share triggering the ``aux-ratio`` policy.
    aux_ratio: float = 0.5
    #: Rows below which the aux-ratio policy stays quiet.
    policy_min_rows: int = 64

    #: Enable range split/merge rebalancing (range routers only).
    rebalance: bool = False
    #: Split a shard once its rows exceed this multiple of the mean.
    split_balance: float = 2.0
    #: Never split a shard below ``2 * split_min_rows`` rows (each half
    #: must be worth its own model).
    split_min_rows: int = 128
    #: Merge an adjacent pair once their combined rows drop under this
    #: multiple of the mean (hysteresis: keep well below split_balance).
    merge_balance: float = 0.5
    #: Hard bounds on the shard count reachable through rebalancing.
    max_shards: int = 64
    min_shards: int = 1
    #: Cap on split/merge actions per maintenance run (a run happens per
    #: mutation batch; the cap bounds mutation-latency spikes).
    max_actions_per_run: int = 4

    #: Right-size each lifecycle (re)build's architecture to the shard's
    #: row count instead of reusing the global fixed spec.
    per_shard_mhas: bool = False
    #: Rows at parity with the base architecture: shards below scale
    #: their widths down by ``sqrt(rows / reference_rows)``.
    sizing_reference_rows: int = 4096
    #: Narrowest hidden width the sizer will emit.
    sizing_min_width: int = 8
    #: Shards at or above this row count run a budget-scaled MHAS search;
    #: smaller shards take the closed-form spec (search costs more than
    #: it saves on tiny tables).
    sizing_search_rows: int = 100_000

    def __post_init__(self):
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}; "
                             f"expected one of {POLICY_NAMES}")
        if self.split_balance <= 1.0:
            raise ValueError("split_balance must be > 1.0")
        if not 0 < self.merge_balance < self.split_balance:
            raise ValueError(
                "merge_balance must be in (0, split_balance) for hysteresis"
            )
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if self.split_min_rows < 1:
            raise ValueError("split_min_rows must be positive")
        if self.max_actions_per_run < 1:
            raise ValueError("max_actions_per_run must be positive")
        if self.sizing_reference_rows < 1 or self.sizing_min_width < 1:
            raise ValueError("sizing parameters must be positive")

    def build_policy(
        self, default_threshold_bytes: Optional[int] = None
    ) -> MaintenancePolicy:
        """Instantiate the configured retrain policy."""
        threshold = (self.retrain_bytes if self.retrain_bytes is not None
                     else default_threshold_bytes)
        return make_policy(self.policy, threshold_bytes=threshold,
                           aux_ratio=self.aux_ratio,
                           min_rows=self.policy_min_rows)

    # ------------------------------------------------------------------
    # Manifest round trip
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """JSON-serializable state (inverse of :meth:`from_state`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LifecycleConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in state.items() if k in known})
