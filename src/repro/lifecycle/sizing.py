"""Per-shard architecture sizing: model cost should track the data.

A sharded store built with one global fixed spec pays the same model
footprint for a 50-row shard as for a 50k-row one — dreaMLearning's
observation (and the ROADMAP's "per-shard MHAS" item) is that model cost
should scale with the data it memorizes.  This module derives the build
configuration for one shard from the shard's row count:

- **closed form** (small shards): hidden widths scale with
  ``sqrt(rows / reference_rows)``, rounded to multiples of 8 and clamped
  to ``[min_width, base width]`` — no search, deterministic, free;
- **budgeted search** (large shards): MHAS runs with an iteration/width
  budget scaled to the row count through
  :func:`repro.core.mhas.budgeted_config`.

Both paths only ever *shrink* relative to the base spec, so a per-shard
build's model bytes are bounded above by the fixed-spec build's.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from ..core.config import DeepMappingConfig
from .policy import LifecycleConfig

__all__ = ["closed_form_sizes", "derive_build_config"]


def _round_width(width: float, min_width: int) -> int:
    """Round to a multiple of 8, floored at ``min_width``."""
    return max(int(min_width), 8 * max(1, round(width / 8)))


def closed_form_sizes(
    base_sizes: Tuple[int, ...],
    n_rows: int,
    reference_rows: int,
    min_width: int,
) -> Tuple[int, ...]:
    """Scale a layer-width tuple to ``sqrt(n_rows / reference_rows)``.

    The exponent follows the memorization-capacity heuristic: a one-hidden-
    layer network's parameter count grows linearly in its width, and the
    rows it can memorize grow roughly linearly in its parameters, so width
    ``∝ sqrt`` keeps *capacity per row* roughly flat while never exceeding
    the base spec (scale is clamped to 1).
    """
    scale = min(1.0, (max(n_rows, 1) / max(reference_rows, 1)) ** 0.5)
    return tuple(
        min(int(w), _round_width(w * scale, min_width)) for w in base_sizes
    )


def derive_build_config(
    base: DeepMappingConfig,
    n_rows: int,
    lifecycle: LifecycleConfig,
) -> DeepMappingConfig:
    """Build configuration for one shard of ``n_rows`` rows.

    Shards under ``lifecycle.sizing_search_rows`` skip MHAS entirely and
    take the closed-form spec; larger shards run a budget-scaled search
    whose width menu is capped at the base spec's widest layer (per-shard
    sizing never upsizes past the fixed spec).
    """
    if n_rows >= lifecycle.sizing_search_rows:
        from ..core.mhas import MHASConfig, budgeted_config

        search_base = base.search if base.search is not None else MHASConfig()
        widths = tuple(base.shared_sizes) + tuple(base.private_sizes)
        search = budgeted_config(
            n_rows,
            base=search_base,
            reference_rows=lifecycle.sizing_reference_rows,
            max_width=max(widths) if widths else None,
        )
        return replace(base, use_search=True, search=search)
    shared = closed_form_sizes(
        tuple(base.shared_sizes), n_rows,
        lifecycle.sizing_reference_rows, lifecycle.sizing_min_width)
    private = closed_form_sizes(
        tuple(base.private_sizes), n_rows,
        lifecycle.sizing_reference_rows, lifecycle.sizing_min_width)
    return replace(base, use_search=False, search=None,
                   shared_sizes=shared, private_sizes=private)
