"""The maintenance engine: one owner for the sharded store's write-side
lifecycle.

:class:`MaintenanceEngine` absorbs what used to be scattered across the
mutation path — per-shard :class:`~repro.core.modify.ModificationTracker`
accounting, the inline retrain trigger, and (new here) **range shard
rebalancing**:

- **splits** — a shard whose row count exceeds ``split_balance`` times
  the mean splits its key range at a median cut chosen from its live
  keys; the two halves rebuild and the router/shard-list swap is atomic
  (see ``ShardedDeepMapping._swap_topology``);
- **merges** — an adjacent pair whose combined rows fall under
  ``merge_balance`` times the mean merges back into one shard
  (hysteresis between the two bounds prevents split/merge oscillation);
- **retrains** — after rebalancing (split/merge products are freshly
  built, so they never double-build here), the engine judges each live
  shard's :class:`~repro.lifecycle.policy.ShardStats` against the
  configured :class:`~repro.lifecycle.policy.MaintenancePolicy`; due
  shards rebuild *through the store's thread pool* (NumPy training
  kernels release the GIL, so several shards retrain concurrently)
  instead of inline in the mutating thread.

Every lifecycle rebuild routes architecture selection through per-shard
MHAS sizing (:mod:`repro.lifecycle.sizing`) when
``lifecycle.per_shard_mhas`` is on, so rebalanced shards get right-sized
models instead of the global fixed spec.

The engine holds a plain reference to its store and calls only public
surface (``shards``, ``router``, ``split_shard``, ``merge_shards``,
``_map_jobs``); the store imports this module, not the other way around,
so the layering stays acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from .policy import LifecycleConfig, MaintenancePolicy, ShardStats
from .sizing import derive_build_config

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.deep_mapping import DeepMapping
    from ..shard.store import ShardedDeepMapping

__all__ = ["LifecycleEvent", "MaintenanceEngine"]


@dataclass
class LifecycleEvent:
    """One maintenance action, in execution order."""

    kind: str  # "rebuild" | "split" | "merge"
    ordinal: int
    #: Live rows involved (the shard for rebuild/split, the pair for merge).
    n_rows: int
    #: Split: the chosen cut.  Merge: the removed boundary.  Rebuild: None.
    cut: Optional[int] = None

    def to_json(self) -> Dict[str, object]:
        return {"kind": self.kind, "ordinal": self.ordinal,
                "n_rows": self.n_rows, "cut": self.cut}


class MaintenanceEngine:
    """Policy-driven retrain/split/merge maintenance for a sharded store."""

    def __init__(self, store: "ShardedDeepMapping", config: LifecycleConfig):
        self.store = store
        self.config = config
        self.policy: MaintenancePolicy = config.build_policy(
            store.config.retrain_threshold_bytes)
        self.events: List[LifecycleEvent] = []
        self.n_rebuilds = 0
        self.n_splits = 0
        self.n_merges = 0
        self.adopt_all()

    # ------------------------------------------------------------------
    # Shard adoption: the engine owns the retrain decision
    # ------------------------------------------------------------------
    def adopt(self, shard: Optional["DeepMapping"]) -> None:
        """Disable a shard's inline retrain; the engine decides instead.

        The shard keeps *recording* into its tracker — that is exactly the
        per-shard accounting the policies read.
        """
        if shard is not None:
            shard.auto_rebuild = False

    def adopt_all(self) -> None:
        for shard in self.store.shards:
            self.adopt(shard)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_stats(self, ordinal: int) -> Optional[ShardStats]:
        """Policy-facing snapshot of one shard (None when empty)."""
        shard = self.store.shards[ordinal]
        if shard is None:
            return None
        return ShardStats(
            ordinal=ordinal,
            n_rows=len(shard),
            aux_rows=len(shard.aux),
            bytes_since_build=shard.tracker.bytes_since_build,
            ops_since_build=shard.tracker.ops_since_build,
        )

    def summary(self) -> Dict[str, object]:
        """Manifest-ready counters (see ``ShardManifest.lifecycle``)."""
        return {
            "policy": self.policy.name,
            "rebalance": self.config.rebalance,
            "per_shard_mhas": self.config.per_shard_mhas,
            "rebuilds": self.n_rebuilds,
            "splits": self.n_splits,
            "merges": self.n_merges,
        }

    def restore_counters(self, state: Dict[str, object]) -> None:
        """Adopt lifetime counters from a saved manifest."""
        self.n_rebuilds = int(state.get("rebuilds", 0))
        self.n_splits = int(state.get("splits", 0))
        self.n_merges = int(state.get("merges", 0))

    def build_config_for(self, n_rows: int):
        """Build configuration for a lifecycle (re)build of ``n_rows``.

        Returns ``None`` (meaning "use the store config") when per-shard
        sizing is disabled.
        """
        if not self.config.per_shard_mhas:
            return None
        return derive_build_config(self.store.config, n_rows, self.config)

    # ------------------------------------------------------------------
    # The maintenance run
    # ------------------------------------------------------------------
    def run_pending(self) -> List[LifecycleEvent]:
        """One maintenance pass; called after every mutation batch.

        Runs under the store's single-writer contract (the mutating thread
        calls it), so shard structures may be swapped freely.  Returns the
        events performed this pass (also appended to :attr:`events`).
        """
        performed: List[LifecycleEvent] = []
        # Rebalance first: splits and merges rebuild their shards anyway
        # (with zeroed trackers), so a shard that is both retrain-due and
        # overfull gets one build, not a retrain whose model is thrown
        # away by the split that follows.
        if self.config.rebalance and self.store.router.kind == "range":
            performed.extend(self._run_rebalance())
        performed.extend(self._run_retrains())
        self.events.extend(performed)
        return performed

    # -- retrains -------------------------------------------------------
    def _run_retrains(self) -> List[LifecycleEvent]:
        due: List[int] = []
        for ordinal in range(len(self.store.shards)):
            stats = self.shard_stats(ordinal)
            if stats is not None and self.policy.should_retrain(stats):
                due.append(ordinal)
        if not due:
            return []

        def rebuild_one(ordinal: int) -> LifecycleEvent:
            shard = self.store.shards[ordinal]
            n_rows = len(shard)
            shard.rebuild(config=self.build_config_for(n_rows))
            # Retraining preserves the keyset, but rebuilding the
            # shard's negative filter too drops the false positives
            # accumulated by deletes since the last build.
            self.store.refresh_filter(ordinal)
            return LifecycleEvent("rebuild", ordinal, n_rows)

        # Through the store's fan-out pool: one job per due shard, the
        # mutating thread blocks on the batch instead of training inline
        # one shard at a time.
        events = self.store._map_jobs(rebuild_one, due)
        self.n_rebuilds += len(events)
        return events

    # -- rebalancing ----------------------------------------------------
    def _run_rebalance(self) -> List[LifecycleEvent]:
        events: List[LifecycleEvent] = []
        for _ in range(self.config.max_actions_per_run):
            event = self._one_rebalance_action()
            if event is None:
                break
            events.append(event)
        return events

    def _one_rebalance_action(self) -> Optional[LifecycleEvent]:
        counts = np.asarray(self.store.shard_row_counts(), dtype=np.int64)
        if counts.size == 0 or counts.sum() == 0:
            return None
        # Balance bounds are relative to the mean over *live* shards:
        # empty shards (e.g. after a drain) would otherwise drag the mean
        # down until every surviving shard looks overfull, starving the
        # merge branch that would clean those empties up.
        mean = counts.sum() / max(int((counts > 0).sum()), 1)

        split = self._pick_split(counts, mean)
        if split is not None:
            ordinal = split
            n_rows = int(counts[ordinal])
            cut = self.store.split_shard(
                ordinal,
                configs=(self.build_config_for(n_rows // 2),
                         self.build_config_for(n_rows - n_rows // 2)),
            )
            self.n_splits += 1
            return LifecycleEvent("split", ordinal, n_rows, cut=cut)

        merge = self._pick_merge(counts, mean)
        if merge is not None:
            ordinal = merge
            n_rows = int(counts[ordinal] + counts[ordinal + 1])
            boundary = int(self.store.router.cuts[ordinal])
            self.store.merge_shards(
                ordinal, config=self.build_config_for(n_rows))
            self.n_merges += 1
            return LifecycleEvent("merge", ordinal, n_rows, cut=boundary)
        return None

    def _pick_split(self, counts: np.ndarray, mean: float) -> Optional[int]:
        """Largest shard past the split bound that can actually split."""
        if counts.size >= self.config.max_shards:
            return None
        bound = max(self.config.split_balance * mean,
                    2 * self.config.split_min_rows)
        for ordinal in np.argsort(counts)[::-1]:
            if counts[ordinal] < bound:
                return None
            if self.store.can_split(int(ordinal)):
                return int(ordinal)
        return None

    def _pick_merge(self, counts: np.ndarray, mean: float) -> Optional[int]:
        """Adjacent pair with the smallest combined rows under the bound."""
        if counts.size <= max(self.config.min_shards, 1):
            return None
        combined = counts[:-1] + counts[1:]
        ordinal = int(np.argmin(combined))
        if combined[ordinal] >= self.config.merge_balance * mean:
            return None
        return ordinal

    def __repr__(self) -> str:
        return (f"MaintenanceEngine(policy={self.policy.name!r}, "
                f"rebalance={self.config.rebalance}, "
                f"rebuilds={self.n_rebuilds}, splits={self.n_splits}, "
                f"merges={self.n_merges})")
