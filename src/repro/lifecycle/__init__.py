"""Adaptive shard lifecycle: retrain policies, rebalancing, model sizing.

This package owns the *write-side* lifecycle of a sharded DeepMapping
store, complementing the read-side fan-out of :mod:`repro.shard`:

- :mod:`repro.lifecycle.policy` — pluggable retrain policies (the paper's
  DM-Z1 bytes threshold, an aux-ratio bound, never) judged against
  per-shard :class:`ShardStats`, plus :class:`LifecycleConfig`, the knob
  bundle persisted in the store manifest;
- :mod:`repro.lifecycle.sizing` — per-shard MHAS: derive each lifecycle
  (re)build's architecture from the shard's row count (closed-form small
  specs for small shards, budget-scaled search for large ones);
- :mod:`repro.lifecycle.engine` — :class:`MaintenanceEngine`, which runs
  after every mutation batch: due shards retrain on the store's thread
  pool, overfull range shards split at a median key, underfull adjacent
  shards merge, and every rebuild is right-sized.

See ``docs/lifecycle.md`` for the policy semantics and the split/merge
invariants.
"""

from .engine import LifecycleEvent, MaintenanceEngine
from .policy import (AuxRatioPolicy, BytesThresholdPolicy, LifecycleConfig,
                     MaintenancePolicy, NeverPolicy, POLICY_NAMES,
                     ShardStats, make_policy)
from .sizing import closed_form_sizes, derive_build_config

__all__ = [
    "LifecycleConfig",
    "LifecycleEvent",
    "MaintenanceEngine",
    "MaintenancePolicy",
    "BytesThresholdPolicy",
    "AuxRatioPolicy",
    "NeverPolicy",
    "ShardStats",
    "make_policy",
    "POLICY_NAMES",
    "closed_form_sizes",
    "derive_build_config",
]
