"""Command-line interface for the DeepMapping reproduction.

Subcommands:

- ``build``  — fit a hybrid structure over a generated dataset and save it
- ``info``   — print a saved structure's size report
- ``query``  — point lookups against a saved structure
- ``serve``  — long-lived coalescing lookup server (TCP/JSON-lines)
- ``bench``  — quick size/latency comparison against baselines

``build --shards N`` fits a sharded store instead of a monolithic one; the
output target is then a container (manifest + one payload per shard), and
``info`` / ``query`` detect it automatically.

Store targets are URLs — ``file://`` (the default for bare paths),
``mem://`` (process-local scratch), ``zip://`` (single-archive store) —
resolved through :func:`repro.open`; passing a bare path still works but
is the deprecated pre-URL dispatch.

Examples::

    python -m repro build --dataset tpch:orders --scale 0.2 --out orders.dm
    python -m repro build --dataset tpch:orders --shards 4 --out orders.dms
    python -m repro build --dataset tpch:orders --out zip://orders.zip
    python -m repro info orders.dm
    python -m repro query zip://orders.zip --key o_orderkey=1
    python -m repro serve orders.dms --port 7474 --max-delay-ms 2
    python -m repro bench --dataset synthetic:multi-high --systems DM-Z,ABC-Z
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Union

import numpy as np

from .bench import format_storage_latency_table, run_comparison
from .core import DeepMapping, DeepMappingConfig
from .data import ColumnTable, crop, synthetic, tpcds, tpch
from .lifecycle import LifecycleConfig, POLICY_NAMES
from .shard import ShardedDeepMapping, ShardingConfig
from .store import EXECUTOR_NAMES, build_store, open_store, warn_once

__all__ = ["main", "load_dataset"]


def load_dataset(spec: str, scale: float, seed: int) -> ColumnTable:
    """Resolve a dataset spec of the form ``family:name``.

    Families: ``tpch`` (supplier/part/customer/orders/lineitem), ``tpcds``
    (customer_demographics/catalog_sales/catalog_returns), ``synthetic``
    (single-low/single-high/multi-low/multi-high, rows = 10000 * scale),
    and ``crop`` (raster edge = 100 * sqrt(scale)).
    """
    family, _, name = spec.partition(":")
    if family == "tpch":
        return tpch.generate(name, scale=scale, seed=seed)
    if family == "tpcds":
        return tpcds.generate(name, scale=scale, seed=seed)
    if family == "synthetic":
        rows = max(int(10_000 * scale), 100)
        kind, _, correlation = name.partition("-")
        if kind == "single":
            return synthetic.single_column(rows, correlation, seed=seed)
        if kind == "multi":
            return synthetic.multi_column(rows, correlation, seed=seed)
        raise SystemExit(f"unknown synthetic dataset {name!r}")
    if family == "crop":
        edge = max(int(100 * np.sqrt(scale)), 10)
        return crop.generate(edge, edge, seed=seed)
    raise SystemExit(f"unknown dataset family {family!r} in {spec!r}")


def _config_from_args(args: argparse.Namespace) -> DeepMappingConfig:
    kwargs = dict(
        epochs=args.epochs,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        aux_codec=args.aux_codec,
        key_headroom_fraction=args.headroom,
        use_search=args.search,
        seed=args.seed,
    )
    if args.shared:
        kwargs["shared_sizes"] = tuple(int(s) for s in args.shared.split(","))
    if args.private:
        kwargs["private_sizes"] = tuple(int(s) for s in args.private.split(","))
    return DeepMappingConfig(**kwargs)


def _load_structure(path: str, **open_kwargs) \
        -> Union[DeepMapping, ShardedDeepMapping]:
    """Open a saved structure, monolithic or sharded, via :func:`repro.open`.

    Bare paths (no ``scheme://``) are the deprecated pre-URL dispatch:
    they keep working identically but announce the URL form once.
    """
    if "://" not in path:
        warn_once(
            "cli-path-dispatch",
            "bare store paths on the CLI are deprecated; address stores by "
            "URL instead (file:// for local paths, mem://, zip://)",
        )
    try:
        return open_store(path, **open_kwargs)
    except (FileNotFoundError, ValueError) as exc:
        # Both carry the accepted-scheme list in their message.
        raise SystemExit(str(exc)) from None


def _lifecycle_from_args(args: argparse.Namespace) -> Optional[LifecycleConfig]:
    """A LifecycleConfig when any lifecycle knob was given, else None."""
    wants = (args.rebalance or args.per_shard_mhas
             or args.retrain_policy is not None
             or args.retrain_bytes is not None)
    if not wants:
        return None
    if args.retrain_policy == "bytes" and args.retrain_bytes is None:
        # BytesThresholdPolicy(None) never fires — the explicitly
        # requested policy would silently behave like "never".
        raise SystemExit("--retrain-policy bytes needs --retrain-bytes")
    if args.retrain_policy is not None:
        policy = args.retrain_policy
    elif args.retrain_bytes is not None:
        policy = "bytes"
    else:
        # Only --rebalance / --per-shard-mhas given: no retrain trigger
        # was requested, so say so instead of a thresholdless "bytes".
        policy = "never"
    return LifecycleConfig(
        policy=policy,
        retrain_bytes=args.retrain_bytes,
        rebalance=args.rebalance,
        per_shard_mhas=args.per_shard_mhas,
    )


def _cmd_build(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    lifecycle = _lifecycle_from_args(args)
    if lifecycle is not None and args.shards == 1:
        raise SystemExit("lifecycle knobs (--rebalance / --per-shard-mhas / "
                         "--retrain-*) need --shards > 1")
    if lifecycle is not None and lifecycle.rebalance \
            and args.shard_strategy != "range":
        raise SystemExit("--rebalance requires --shard-strategy range")
    table = load_dataset(args.dataset, args.scale, args.seed)
    print(f"building DeepMapping over {table.name}: {table.n_rows} rows, "
          f"{table.uncompressed_bytes() // 1024} KB raw")
    if args.shards > 1:
        dm = build_store(
            table, _config_from_args(args),
            sharding=ShardingConfig(n_shards=args.shards,
                                    strategy=args.shard_strategy,
                                    executor=args.executor,
                                    lifecycle=lifecycle))
        print(f"sharded {args.shard_strategy} x{args.shards}: "
              f"rows/shard {dm.shard_row_counts()}")
        if dm.engine is not None:
            summary = dm.engine.summary()
            print(f"lifecycle: policy={summary['policy']} "
                  f"rebalance={summary['rebalance']} "
                  f"per-shard-mhas={summary['per_shard_mhas']}")
    else:
        dm = build_store(table, _config_from_args(args))
    report = dm.size_report()
    print(f"hybrid: {report.total_bytes // 1024} KB "
          f"(ratio {report.compression_ratio:.3f}); "
          f"memorized {report.memorized_fraction:.0%} of tuples")
    nbytes = dm.save(args.out)
    print(f"saved {nbytes} bytes to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dm = _load_structure(args.path)
    report = dm.size_report()
    print(f"keys: {dm.key_names}; values: {list(dm.value_names)}; "
          f"live rows: {len(dm)}")
    if isinstance(dm, ShardedDeepMapping):
        print(f"shards:       {dm.n_shards} "
              f"({dm.sharding.strategy}; rows {dm.shard_row_counts()})")
        if dm.engine is not None:
            summary = dm.engine.summary()
            print(f"lifecycle:    policy={summary['policy']}, "
                  f"rebalance={summary['rebalance']}, "
                  f"per-shard-mhas={summary['per_shard_mhas']}; "
                  f"{summary['rebuilds']} rebuilds, "
                  f"{summary['splits']} splits, {summary['merges']} merges")
    print(f"model:        {report.model_bytes:>10,} B")
    print(f"aux table:    {report.aux_bytes:>10,} B ({report.n_in_aux} rows)")
    print(f"exist vector: {report.exist_bytes:>10,} B")
    print(f"decode map:   {report.decode_bytes:>10,} B")
    print(f"total:        {report.total_bytes:>10,} B "
          f"(ratio {report.compression_ratio:.3f} of "
          f"{report.dataset_bytes:,} B raw)")
    print(f"memorized:    {report.memorized_fraction:.1%} of tuples")
    return 0


def _parse_key(pairs: List[str], key_names) -> Dict[str, np.ndarray]:
    parsed: Dict[str, List[int]] = {name: [] for name in key_names}
    row: Dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if name not in parsed:
            raise SystemExit(f"unknown key column {name!r}; "
                             f"expected {tuple(key_names)}")
        row[name] = int(value)
        if set(row) == set(key_names):
            for k, v in row.items():
                parsed[k].append(v)
            row = {}
    if row:
        raise SystemExit("incomplete trailing key (missing columns "
                         f"{sorted(set(key_names) - set(row))})")
    return {k: np.array(v, dtype=np.int64) for k, v in parsed.items()}


def _cmd_query(args: argparse.Namespace) -> int:
    dm = _load_structure(args.path)
    keys = _parse_key(args.key, dm.key_names)
    n = len(next(iter(keys.values())))
    if n == 0:
        raise SystemExit("no --key given")
    result = dm.lookup(keys)
    for i, row in enumerate(result.rows()):
        key_repr = ", ".join(f"{k}={keys[k][i]}" for k in dm.key_names)
        if row is None:
            print(f"({key_repr}) -> NULL")
        else:
            values = ", ".join(f"{k}={row[k]}" for k in dm.value_names)
            print(f"({key_repr}) -> {values}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import AdmissionPolicy, LoadShedder, SheddingPolicy, \
        run_forever

    # Read-only open: the server shares the process-wide payload cache
    # and can never mutate the store it serves.
    dm = _load_structure(args.path, writable=False, executor=args.executor)
    policy = AdmissionPolicy(max_batch_keys=args.max_batch_keys,
                             max_delay_ms=args.max_delay_ms,
                             max_queue_requests=args.max_queue_requests,
                             tenant_quota_keys=args.tenant_quota_keys)
    shedder = None
    if args.shed_target_ms is not None:
        shedder = LoadShedder(SheddingPolicy(
            target_delay_ms=args.shed_target_ms,
            hard_delay_ms=max(args.shed_hard_ms, args.shed_target_ms)))

    def ready(port: int) -> None:
        print(f"serving {args.path} on {args.host}:{port} "
              f"(max_batch_keys={policy.max_batch_keys}, "
              f"max_delay_ms={policy.max_delay_ms:g}); "
              f"SIGTERM/Ctrl-C drains and exits", flush=True)

    # run_forever drains on SIGTERM/SIGINT: admission stops, every
    # admitted request completes, then we fall out and exit 0.
    run_forever(dm, host=args.host, port=args.port, policy=policy,
                shedder=shedder, on_ready=ready)
    dm.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.shards > 1:
        raise SystemExit("bench compares monolithic systems; for shard "
                         "scaling run benchmarks/bench_sharding.py")
    table = load_dataset(args.dataset, args.scale, args.seed)
    systems = args.systems.split(",")
    results = run_comparison(
        table,
        systems=systems,
        batch_sizes=[args.batch],
        memory_budget=args.memory_budget,
        repeats=args.repeats,
        dm_config=_config_from_args(args),
        partition_bytes=args.partition_bytes,
    )
    print(format_storage_latency_table(
        results, [args.batch],
        title=f"{args.dataset} (rows={table.n_rows}, "
              f"raw={table.uncompressed_bytes() // 1024}KB)"))
    return 0


def _add_build_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--learning-rate", type=float, default=0.003)
    parser.add_argument("--shared", default="",
                        help="comma-separated shared layer widths")
    parser.add_argument("--private", default="",
                        help="comma-separated private layer widths")
    parser.add_argument("--aux-codec", default="zstd",
                        choices=["none", "gzip", "zstd", "lzma"])
    parser.add_argument("--headroom", type=float, default=0.0,
                        help="key-domain headroom fraction for inserts")
    parser.add_argument("--search", action="store_true",
                        help="run MHAS instead of fixed layer sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=1,
                        help="partition the key domain across N independent "
                             "shards (N>1 saves a directory store)")
    parser.add_argument("--shard-strategy", default="range",
                        choices=["range", "hash"],
                        help="shard placement policy (with --shards > 1)")
    parser.add_argument("--executor", default=None,
                        choices=list(EXECUTOR_NAMES),
                        help="fan-out executor strategy (with --shards > 1; "
                             "default: thread pool)")
    parser.add_argument("--rebalance", action="store_true",
                        help="enable range shard split/merge rebalancing "
                             "under inserts (with --shards > 1)")
    parser.add_argument("--per-shard-mhas", action="store_true",
                        help="right-size each shard's architecture to its "
                             "row count (with --shards > 1)")
    parser.add_argument("--retrain-policy", default=None,
                        choices=list(POLICY_NAMES),
                        help="lifecycle retrain trigger (with --shards > 1)")
    parser.add_argument("--retrain-bytes", type=int, default=None,
                        help="byte threshold for the 'bytes' retrain policy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DeepMapping reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="fit and save a structure")
    p_build.add_argument("--dataset", required=True,
                         help="family:name, e.g. tpch:orders")
    p_build.add_argument("--scale", type=float, default=0.2)
    p_build.add_argument("--out", required=True,
                         help="output target: a path or file:// / mem:// / "
                              "zip:// URL (a container when --shards > 1)")
    _add_build_options(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_info = sub.add_parser("info", help="size report of a saved structure")
    p_info.add_argument("path", help="store path or file:// / zip:// URL")
    p_info.set_defaults(func=_cmd_info)

    p_query = sub.add_parser("query", help="point lookups")
    p_query.add_argument("path", help="store path or file:// / zip:// URL")
    p_query.add_argument("--key", action="append", default=[],
                         help="column=value; repeat per key column and row")
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve", help="coalescing lookup server over a saved store")
    p_serve.add_argument("path", help="store path or file:// / zip:// URL "
                                      "(opened read-only)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 picks a free one, printed on "
                              "startup)")
    p_serve.add_argument("--max-batch-keys", type=int, default=8192,
                         help="flush a forming batch at this many keys")
    p_serve.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="max queueing delay before a partial batch "
                              "flushes")
    p_serve.add_argument("--max-queue-requests", type=int, default=None,
                         help="hard back-pressure bound on queued requests "
                              "(default: unbounded)")
    p_serve.add_argument("--tenant-quota-keys", type=int, default=None,
                         help="per-tenant fair-admission quota on queued "
                              "keys, scaled by tenant weight (default: off)")
    p_serve.add_argument("--shed-target-ms", type=float, default=None,
                         help="enable adaptive load shedding: estimated "
                              "backlog delay past which over-share work is "
                              "shed with a retry-after hint")
    p_serve.add_argument("--shed-hard-ms", type=float, default=100.0,
                         help="backlog delay past which ALL new work is shed "
                              "(with --shed-target-ms)")
    p_serve.add_argument("--executor", default=None,
                         choices=list(EXECUTOR_NAMES),
                         help="store fan-out executor strategy")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser("bench", help="compare against baselines")
    p_bench.add_argument("--dataset", required=True)
    p_bench.add_argument("--scale", type=float, default=0.2)
    p_bench.add_argument("--systems", default="DM-Z,ABC-Z,AB")
    p_bench.add_argument("--batch", type=int, default=1000)
    p_bench.add_argument("--repeats", type=int, default=2)
    p_bench.add_argument("--memory-budget", type=int, default=None)
    p_bench.add_argument("--partition-bytes", type=int, default=16 * 1024)
    _add_build_options(p_bench)
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
