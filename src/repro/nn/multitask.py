"""The shared multi-task memorization network (paper Sec. IV-A).

A :class:`MultiTaskMLP` is a trunk of *shared* fully connected layers that
abstract the key, followed by one chain of *private* layers per value column
(task), each ending in a softmax output over that column's vocabulary.  The
number and width of shared/private layers is exactly what MHAS searches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .layers import Dense, Parameter
from .losses import softmax_cross_entropy

__all__ = ["ArchitectureSpec", "MultiTaskMLP"]

#: Signature of a weight provider: (scope, in_dim, out_dim) -> (weight, bias).
WeightProvider = Callable[[str, int, int], Tuple[Parameter, Parameter]]


@dataclass(frozen=True)
class ArchitectureSpec:
    """Complete description of a multi-task model's shape.

    Attributes
    ----------
    input_dim:
        Width of the encoded key vector.
    shared_sizes:
        Hidden widths of the shared trunk (may be empty).
    private_sizes:
        Hidden widths of each task's private chain (may be empty per task).
    output_dims:
        Softmax width (value-column cardinality) per task.
    """

    input_dim: int
    shared_sizes: Tuple[int, ...]
    private_sizes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    output_dims: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if self.input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if set(self.private_sizes) != set(self.output_dims):
            raise ValueError("private_sizes and output_dims must share task names")
        if not self.output_dims:
            raise ValueError("at least one task is required")
        for task, dim in self.output_dims.items():
            if dim <= 0:
                raise ValueError(f"output dim for task {task!r} must be positive")

    @property
    def tasks(self) -> Tuple[str, ...]:
        """Task names in deterministic order."""
        return tuple(sorted(self.output_dims))

    def trunk_output_dim(self) -> int:
        """Width of the representation entering the private chains."""
        return self.shared_sizes[-1] if self.shared_sizes else self.input_dim

    def layer_plan(self) -> List[Tuple[str, int, int]]:
        """Flat list of ``(scope, in_dim, out_dim)`` for every dense layer."""
        plan: List[Tuple[str, int, int]] = []
        prev = self.input_dim
        for i, width in enumerate(self.shared_sizes):
            plan.append((f"shared/{i}", prev, width))
            prev = width
        trunk = prev
        for task in self.tasks:
            prev = trunk
            for i, width in enumerate(self.private_sizes[task]):
                plan.append((f"{task}/private/{i}", prev, width))
                prev = width
            plan.append((f"{task}/out", prev, self.output_dims[task]))
        return plan

    def param_count(self) -> int:
        """Number of scalar weights the spec implies."""
        return sum(i * o + o for _, i, o in self.layer_plan())


class MultiTaskMLP:
    """Shared-trunk multi-task classifier with manual backprop.

    Parameters
    ----------
    spec:
        The architecture to instantiate.
    rng:
        Generator for fresh Glorot weights (unused when ``weights`` given).
    weights:
        Optional provider mapping ``(scope, in_dim, out_dim)`` to shared
        :class:`Parameter` pairs — the hook the MHAS weight bank uses so all
        sampled architectures train the same underlying tensors.
    """

    def __init__(
        self,
        spec: ArchitectureSpec,
        rng: Optional[np.random.Generator] = None,
        weights: Optional[WeightProvider] = None,
    ):
        self.spec = spec
        self.shared: List[Dense] = []
        self.heads: Dict[str, List[Dense]] = {}

        def make(scope: str, in_dim: int, out_dim: int, activation: str) -> Dense:
            if weights is not None:
                w, b = weights(scope, in_dim, out_dim)
                return Dense(in_dim, out_dim, activation=activation,
                             weight=w, bias=b, name=scope)
            return Dense(in_dim, out_dim, rng=rng, activation=activation, name=scope)

        prev = spec.input_dim
        for i, width in enumerate(spec.shared_sizes):
            self.shared.append(make(f"shared/{i}", prev, width, "relu"))
            prev = width
        trunk = prev
        for task in spec.tasks:
            chain: List[Dense] = []
            prev = trunk
            for i, width in enumerate(spec.private_sizes[task]):
                chain.append(make(f"{task}/private/{i}", prev, width, "relu"))
                prev = width
            chain.append(make(f"{task}/out", prev, spec.output_dims[task], "linear"))
            self.heads[task] = chain

    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Tuple[str, ...]:
        """Task names in deterministic order."""
        return self.spec.tasks

    def forward(self, x: np.ndarray, train: bool = True) -> Dict[str, np.ndarray]:
        """Logits per task for input batch ``x``."""
        h = np.asarray(x)
        if h.dtype not in (np.float32, np.float64):
            h = h.astype(np.float32)
        for layer in self.shared:
            h = layer.forward(h, train=train)
        out: Dict[str, np.ndarray] = {}
        for task, chain in self.heads.items():
            t = h
            for layer in chain:
                t = layer.forward(t, train=train)
            out[task] = t
        return out

    def loss_and_grad(self, x: np.ndarray, labels: Dict[str, np.ndarray]) -> float:
        """Summed cross entropy over tasks; accumulates parameter grads.

        Following the paper, the multi-task loss is the sum of each task's
        cross entropy; the shared trunk receives the sum of head gradients.
        """
        logits = self.forward(x, train=True)
        total = 0.0
        dtrunk: Optional[np.ndarray] = None
        for task in self.tasks:
            loss, dlogit = softmax_cross_entropy(logits[task], labels[task])
            total += loss
            grad = dlogit
            for layer in reversed(self.heads[task]):
                grad = layer.backward(grad)
            dtrunk = grad if dtrunk is None else dtrunk + grad
        grad = dtrunk
        for layer in reversed(self.shared):
            grad = layer.backward(grad)
        return total

    def predict_codes(
        self, x: np.ndarray, batch_size: int = 65536
    ) -> Dict[str, np.ndarray]:
        """Argmax label code per task, evaluated in batches."""
        x = np.asarray(x, dtype=np.float32)
        outs = {task: np.empty(x.shape[0], dtype=np.int64) for task in self.tasks}
        for start in range(0, x.shape[0], batch_size):
            stop = min(start + batch_size, x.shape[0])
            logits = self.forward(x[start:stop], train=False)
            for task in self.tasks:
                outs[task][start:stop] = logits[task].argmax(axis=1)
        return outs

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Unique parameters across trunk and heads."""
        seen: Dict[int, Parameter] = {}
        for layer in self.shared:
            for param in layer.parameters():
                seen[id(param)] = param
        for chain in self.heads.values():
            for layer in chain:
                for param in layer.parameters():
                    seen[id(param)] = param
        return list(seen.values())

    def param_count(self) -> int:
        """Total scalar weights."""
        return sum(p.size for p in self.parameters())

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Named weight arrays (used by the inference session serializer)."""
        arrays: Dict[str, np.ndarray] = {}
        for scope, layer in self._named_layers():
            arrays[f"{scope}.W"] = layer.weight.value
            arrays[f"{scope}.b"] = layer.bias.value
        return arrays

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> int:
        """Warm-start: copy weights whose name and shape both match.

        Implements the paper's future-work "model reuse" direction
        (Sec. V-D): a retrain initialized from the previous model converges
        much faster than training from scratch.  Layers whose shape changed
        (e.g. a wider key encoding after domain growth, or a grown
        vocabulary head) keep their fresh initialization.  Returns the
        number of tensors transferred.
        """
        loaded = 0
        for scope, layer in self._named_layers():
            for suffix, param in (("W", layer.weight), ("b", layer.bias)):
                source = arrays.get(f"{scope}.{suffix}")
                if source is not None and source.shape == param.value.shape:
                    param.value[...] = np.asarray(source, dtype=np.float32)
                    loaded += 1
        return loaded

    def _named_layers(self) -> List[Tuple[str, Dense]]:
        named: List[Tuple[str, Dense]] = [
            (f"shared/{i}", layer) for i, layer in enumerate(self.shared)
        ]
        for task in self.tasks:
            named.extend((f"{task}/{i}", layer)
                         for i, layer in enumerate(self.heads[task]))
        return named

    def __repr__(self) -> str:
        return (
            f"MultiTaskMLP(shared={self.spec.shared_sizes}, "
            f"tasks={ {t: self.spec.private_sizes[t] for t in self.tasks} }, "
            f"params={self.param_count()})"
        )
