"""Frozen batch-inference runtime.

The paper deploys trained models through the ONNX runtime (Sec. IV-B2) —
a forward-only graph with frozen weights, optimized for batched lookups.
:class:`InferenceSession` plays that role here: it snapshots a trained
:class:`~repro.nn.multitask.MultiTaskMLP` into plain weight arrays (stored
at ``float16`` by default, halving the offline model footprint), executes
batched forward passes with no autograd bookkeeping, and serializes to a
compact byte blob whose length is the "model size" term of the paper's
Eq. 1 objective.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Tuple

import numpy as np

from .activations import relu
from .multitask import ArchitectureSpec, MultiTaskMLP

__all__ = ["InferenceSession"]


def _spec_from_dict(spec: Dict[str, object]) -> ArchitectureSpec:
    """Rebuild an :class:`ArchitectureSpec` from its serialized fields."""
    return ArchitectureSpec(
        input_dim=spec["input_dim"],
        shared_sizes=tuple(spec["shared_sizes"]),
        private_sizes={t: tuple(v)
                       for t, v in spec["private_sizes"].items()},
        output_dims=dict(spec["output_dims"]),
    )


class InferenceSession:
    """Forward-only snapshot of a multi-task model.

    Build with :meth:`from_model`, query with :meth:`run` /
    :meth:`run_logits`, persist with :meth:`to_bytes` / :meth:`from_bytes`.
    """

    def __init__(
        self,
        spec: ArchitectureSpec,
        shared: List[Tuple[np.ndarray, np.ndarray]],
        heads: Dict[str, List[Tuple[np.ndarray, np.ndarray]]],
        weight_dtype: str = "float16",
    ):
        self.spec = spec
        self.weight_dtype = np.dtype(weight_dtype)
        self._shared = [(w.astype(self.weight_dtype), b.astype(self.weight_dtype))
                        for w, b in shared]
        self._heads = {
            task: [(w.astype(self.weight_dtype), b.astype(self.weight_dtype))
                   for w, b in chain]
            for task, chain in heads.items()
        }
        self._nbytes: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_model(
        cls, model: MultiTaskMLP, weight_dtype: str = "float16"
    ) -> "InferenceSession":
        """Freeze a trained model into an inference session."""
        shared = [(layer.weight.value, layer.bias.value) for layer in model.shared]
        heads = {
            task: [(layer.weight.value, layer.bias.value) for layer in chain]
            for task, chain in model.heads.items()
        }
        return cls(model.spec, shared, heads, weight_dtype=weight_dtype)

    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Tuple[str, ...]:
        """Task names served by this session."""
        return self.spec.tasks

    def run_logits(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Raw output logits per task for one input batch."""
        h = np.asarray(x, dtype=np.float32)
        for w, b in self._shared:
            h = relu(h @ w.astype(np.float32) + b.astype(np.float32))
        out: Dict[str, np.ndarray] = {}
        for task, chain in self._heads.items():
            t = h
            for w, b in chain[:-1]:
                t = relu(t @ w.astype(np.float32) + b.astype(np.float32))
            w, b = chain[-1]
            out[task] = t @ w.astype(np.float32) + b.astype(np.float32)
        return out

    def run(
        self, x: np.ndarray, batch_size: Optional[int] = 65536
    ) -> Dict[str, np.ndarray]:
        """Predicted label codes per task (argmax), computed in batches."""
        x = np.asarray(x, dtype=np.float32)
        if batch_size is None or x.shape[0] <= batch_size:
            return {t: lg.argmax(axis=1).astype(np.int64)
                    for t, lg in self.run_logits(x).items()}
        outs = {task: np.empty(x.shape[0], dtype=np.int64) for task in self.tasks}
        for start in range(0, x.shape[0], batch_size):
            stop = min(start + batch_size, x.shape[0])
            logits = self.run_logits(x[start:stop])
            for task in self.tasks:
                outs[task][start:stop] = logits[task].argmax(axis=1)
        return outs

    # ------------------------------------------------------------------
    # Serialization / size accounting
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the frozen graph (spec + weights) to bytes."""
        payload = {
            "spec": {
                "input_dim": self.spec.input_dim,
                "shared_sizes": self.spec.shared_sizes,
                "private_sizes": self.spec.private_sizes,
                "output_dims": self.spec.output_dims,
            },
            "weight_dtype": self.weight_dtype.str,
            "shared": self._shared,
            "heads": self._heads,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "InferenceSession":
        """Inverse of :meth:`to_bytes`."""
        data = pickle.loads(payload)
        session = cls.__new__(cls)
        session.spec = _spec_from_dict(data["spec"])
        session.weight_dtype = np.dtype(data["weight_dtype"])
        session._shared = data["shared"]
        session._heads = data["heads"]
        session._nbytes = len(payload)
        return session

    def to_state(self) -> Dict[str, object]:
        """Array-first state for the zero-copy container.

        Unlike :meth:`to_bytes` (one nested pickle blob the loader must
        copy and re-parse), every weight array here stays first-class,
        so the RZC2 container exports them as out-of-band segments and a
        ``writable=False`` cold open maps them straight off disk.  The
        arrays are shared, not copied — the container snapshots them at
        pack time, and the weights are frozen anyway.
        """
        return {
            "spec": {
                "input_dim": self.spec.input_dim,
                "shared_sizes": self.spec.shared_sizes,
                "private_sizes": self.spec.private_sizes,
                "output_dims": self.spec.output_dims,
            },
            "weight_dtype": self.weight_dtype.str,
            "shared": [(w, b) for w, b in self._shared],
            "heads": {task: [(w, b) for w, b in chain]
                      for task, chain in self._heads.items()},
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "InferenceSession":
        """Inverse of :meth:`to_state` — adopts the arrays without
        copying or re-casting (read-only mmap views stay views; the
        forward pass only ever reads them)."""
        session = cls.__new__(cls)
        session.spec = _spec_from_dict(state["spec"])
        session.weight_dtype = np.dtype(state["weight_dtype"])
        session._shared = [tuple(pair) for pair in state["shared"]]
        session._heads = {task: [tuple(pair) for pair in chain]
                          for task, chain in state["heads"].items()}
        session._nbytes = None
        return session

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Named float32 weight arrays in the trainable model's layout,
        enabling warm-started retraining (paper Sec. V-D future work)."""
        arrays: Dict[str, np.ndarray] = {}
        for i, (w, b) in enumerate(self._shared):
            arrays[f"shared/{i}.W"] = w.astype(np.float32)
            arrays[f"shared/{i}.b"] = b.astype(np.float32)
        for task, chain in self._heads.items():
            for i, (w, b) in enumerate(chain):
                arrays[f"{task}/{i}.W"] = w.astype(np.float32)
                arrays[f"{task}/{i}.b"] = b.astype(np.float32)
        return arrays

    @property
    def nbytes(self) -> int:
        """Serialized model size — the ``size(M)`` term in Eq. 1.

        Memoized: the weights are frozen, so the blob length never
        changes, and size accounting (``size_report`` → ``storage_bytes``
        → ``__repr__``) asks for it repeatedly.
        """
        if self._nbytes is None:
            self._nbytes = len(self.to_bytes())
        return self._nbytes

    def param_count(self) -> int:
        """Total scalar weights."""
        total = sum(w.size + b.size for w, b in self._shared)
        for chain in self._heads.values():
            total += sum(w.size + b.size for w, b in chain)
        return total

    def __repr__(self) -> str:
        return (
            f"InferenceSession(tasks={list(self.tasks)}, "
            f"params={self.param_count()}, dtype={self.weight_dtype})"
        )
