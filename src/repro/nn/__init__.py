"""Numpy neural-network substrate.

Stands in for the paper's PyTorch (training) and ONNX runtime (inference):
dense layers with manual backprop, multi-task shared-trunk models, an LSTM
cell for the MHAS controller, Adam/SGD optimizers, and a frozen
:class:`~repro.nn.inference.InferenceSession`.
"""

from .activations import log_softmax, relu, sigmoid, softmax, tanh
from .compiled import CompiledSession
from .inference import InferenceSession
from .initializers import glorot_uniform, orthogonal, uniform, zeros
from .layers import Dense, Embedding, Parameter
from .losses import accuracy, mse, softmax_cross_entropy
from .lstm import LSTMCell, LSTMState, StepCache
from .multitask import ArchitectureSpec, MultiTaskMLP
from .optimizers import SGD, Adam, ExponentialDecay, Optimizer
from .training import Trainer, TrainingResult

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "glorot_uniform",
    "orthogonal",
    "uniform",
    "zeros",
    "Parameter",
    "Dense",
    "Embedding",
    "softmax_cross_entropy",
    "mse",
    "accuracy",
    "LSTMCell",
    "LSTMState",
    "StepCache",
    "ArchitectureSpec",
    "MultiTaskMLP",
    "InferenceSession",
    "CompiledSession",
    "Optimizer",
    "SGD",
    "Adam",
    "ExponentialDecay",
    "Trainer",
    "TrainingResult",
]
