"""Activation functions with explicit derivatives.

The substrate is deliberately small: the paper's models are sequences of
fully connected layers with ReLU hidden activations and softmax outputs;
sigmoid/tanh exist for the LSTM controller.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relu", "relu_grad", "sigmoid", "sigmoid_grad", "tanh", "tanh_grad",
           "softmax", "log_softmax"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU w.r.t. its input."""
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid expressed in terms of its *output* ``y``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_grad(y: np.ndarray) -> np.ndarray:
    """Derivative of tanh expressed in terms of its *output* ``y``."""
    return 1.0 - y * y


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
