"""Parameters and layers with hand-written backpropagation.

The MHAS search (paper Sec. IV-C) shares layer weights across sampled
architectures, ENAS-style.  To support that, weights live in standalone
:class:`Parameter` objects that multiple sampled models may reference; the
optimizer keys its state by parameter identity, so training any sampled model
advances the shared weights.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .activations import relu, relu_grad
from .initializers import glorot_uniform, zeros

__all__ = ["Parameter", "Dense", "Embedding"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        """Number of scalar weights."""
        return int(self.value.size)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Dense:
    """Fully connected layer ``y = act(x W + b)``.

    Parameters
    ----------
    in_dim, out_dim:
        Layer shape.
    rng:
        Generator for Glorot initialization (ignored when ``weight``/``bias``
        are supplied, which is how the MHAS weight bank shares parameters).
    activation:
        ``"relu"`` for hidden layers, ``"linear"`` for output layers.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
        activation: str = "relu",
        weight: Optional[Parameter] = None,
        bias: Optional[Parameter] = None,
        name: str = "dense",
    ):
        if activation not in ("relu", "linear"):
            raise ValueError(f"unsupported activation {activation!r}")
        if weight is None or bias is None:
            if rng is None:
                raise ValueError("rng is required when weights are not supplied")
            weight = Parameter(glorot_uniform((in_dim, out_dim), rng), f"{name}.W")
            bias = Parameter(zeros(out_dim), f"{name}.b")
        if weight.value.shape != (in_dim, out_dim):
            raise ValueError(
                f"weight shape {weight.value.shape} != ({in_dim}, {out_dim})"
            )
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.weight = weight
        self.bias = bias
        self._x: Optional[np.ndarray] = None
        self._pre: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Forward pass; caches inputs for :meth:`backward` when ``train``."""
        pre = x @ self.weight.value + self.bias.value
        out = relu(pre) if self.activation == "relu" else pre
        if train:
            self._x = x
            self._pre = pre
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        """Backprop ``dout`` (dL/dy); accumulates grads, returns dL/dx."""
        if self._x is None or self._pre is None:
            raise RuntimeError("backward called before forward(train=True)")
        if self.activation == "relu":
            dout = dout * relu_grad(self._pre)
        self.weight.grad += self._x.T @ dout
        self.bias.grad += dout.sum(axis=0)
        dx = dout @ self.weight.value.T
        self._x = None
        self._pre = None
        return dx

    def parameters(self) -> List[Parameter]:
        """This layer's trainable parameters."""
        return [self.weight, self.bias]

    def __repr__(self) -> str:
        return f"Dense({self.in_dim}->{self.out_dim}, {self.activation})"


class Embedding:
    """Lookup-table embedding, used by the MHAS controller to feed the
    previous architectural decision back into the LSTM."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        name: str = "embedding",
    ):
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.table = Parameter(
            glorot_uniform((num_embeddings, dim), rng), f"{name}.table"
        )
        self._idx: Optional[np.ndarray] = None

    def forward(self, indices, train: bool = True) -> np.ndarray:
        """Rows of the table selected by ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        if train:
            self._idx = idx
        return self.table.value[idx]

    def backward(self, dout: np.ndarray) -> None:
        """Scatter-add gradients back into the table."""
        if self._idx is None:
            raise RuntimeError("backward called before forward(train=True)")
        np.add.at(self.table.grad, self._idx, dout)
        self._idx = None

    def parameters(self) -> List[Parameter]:
        """This layer's trainable parameters."""
        return [self.table]

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}x{self.dim})"
