"""Loss functions (value + input gradient in one call).

The paper trains memorization models with standard cross entropy
(Sec. IV-C2) and the DeepSqueeze baseline's autoencoder with MSE.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .activations import log_softmax, softmax

__all__ = ["softmax_cross_entropy", "mse", "accuracy"]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross entropy of integer ``labels`` under ``softmax(logits)``.

    Returns ``(loss, dlogits)`` where ``dlogits`` is the gradient of the
    *mean* loss w.r.t. the logits.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    n = logits.shape[0]
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    logp = log_softmax(logits)
    loss = float(-logp[np.arange(n), labels].mean())
    dlogits = softmax(logits)
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits


def mse(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff * diff))
    dpred = (2.0 / diff.size) * diff
    return loss, dpred


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    if logits.shape[0] == 0:
        return 1.0
    return float((logits.argmax(axis=1) == np.asarray(labels)).mean())
