"""Mini-batch training loop for memorization models.

Implements the paper's model-training iterations (Algorithm 2's inner loop):
shuffled mini-batches, Adam with exponentially decayed learning rate, and
early stopping once the absolute epoch-loss delta falls under a tolerance
(the paper uses 1e-4, Sec. V-A6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .multitask import MultiTaskMLP
from .optimizers import Adam, Optimizer

__all__ = ["TrainingResult", "Trainer"]


@dataclass
class TrainingResult:
    """Outcome of a :meth:`Trainer.fit` call."""

    epoch_losses: List[float] = field(default_factory=list)
    epochs_run: int = 0
    converged: bool = False

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (inf when none ran)."""
        return self.epoch_losses[-1] if self.epoch_losses else float("inf")


class Trainer:
    """Trains a :class:`~repro.nn.multitask.MultiTaskMLP` to memorize data.

    Parameters
    ----------
    model:
        The network to train.
    optimizer:
        Defaults to Adam at the paper's settings (lr 0.001, decay handled
        by the caller through the schedule).
    batch_size:
        Paper default is 16384 for model training; tests use smaller.
    tol:
        Early-stopping tolerance on the absolute epoch-loss delta.
    rng:
        Shuffling generator (deterministic by default).
    """

    def __init__(
        self,
        model: MultiTaskMLP,
        optimizer: Optional[Optimizer] = None,
        batch_size: int = 16384,
        tol: float = 1e-4,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.optimizer = optimizer if optimizer is not None else Adam(0.001)
        self.batch_size = batch_size
        self.tol = tol
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def fit(
        self,
        x: np.ndarray,
        labels: Dict[str, np.ndarray],
        epochs: int,
        shuffle: bool = True,
    ) -> TrainingResult:
        """Run up to ``epochs`` passes over ``(x, labels)``.

        Returns the per-epoch loss history; stops early when the loss delta
        between consecutive epochs drops below ``tol``.
        """
        x = np.asarray(x, dtype=np.float32)
        n = x.shape[0]
        for task, lab in labels.items():
            if len(lab) != n:
                raise ValueError(f"labels for task {task!r} have wrong length")
        result = TrainingResult()
        if n == 0:
            result.converged = True
            return result

        params = self.model.parameters()
        previous = None
        for _ in range(epochs):
            order = self.rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start: start + self.batch_size]
                batch_labels = {t: np.asarray(lab)[idx] for t, lab in labels.items()}
                epoch_loss += self.model.loss_and_grad(x[idx], batch_labels)
                self.optimizer.step(params)
                batches += 1
            epoch_loss /= batches
            result.epoch_losses.append(epoch_loss)
            result.epochs_run += 1
            if previous is not None and abs(previous - epoch_loss) < self.tol:
                result.converged = True
                break
            previous = epoch_loss
        return result
