"""Compiled query-time kernel for the frozen lookup model.

:class:`~repro.nn.inference.InferenceSession` is the *reference* runtime:
it stores quantized weights and replays the generic layer graph, casting
weights up to float32 on every batch and consuming a dense one-hot input.
That is faithful to the paper's ONNX deployment but leaves measurable
work on the table for the lookup hot path.  :class:`CompiledSession`
freezes the same model into the tightest kernel the input structure
allows:

1. **Dequantize once** — float32 copies of every weight/bias are cached
   at construction, so no ``astype`` runs per batch per layer.
2. **Gather-fused first layer** — the model's input is a concatenation of
   one-hot digit blocks (:class:`~repro.data.encoding.KeyEncoder`), so
   ``x @ W1 + b1`` is exactly a sum of one ``W1`` row per digit position.
   At compile time consecutive digit positions are folded into *group
   tables*: a group of ``g`` positions of base ``b`` becomes one
   ``(b**g, hidden)`` table of precomputed partial sums (the
   per-(digit-position, digit-value) rows of ``W1``, summed across the
   group).  At query time each group's index is read straight off the
   flat integer key with one divide and one modulo, and the first layer
   reduces to a couple of table gathers — the ``(n, input_dim)`` one-hot
   matrix is never materialized and the widest GEMM of the network
   disappears.
3. **Preallocated scratch** — activation buffers and the group-index
   vector live in thread-local scratch, reused across batches (and across
   the chunks of one large batch), so steady-state inference does no
   large allocations; gathers use ``np.take(..., mode="clip", out=...)``,
   whose unchecked path is several times faster than bounds-checked take
   (indices are in-range by construction).

The compiled kernel consumes *flat integer keys* (the output of
:meth:`~repro.data.encoding.CompositeKeyCodec.flatten`), not encoded
feature vectors.  At query time the staged read path
(:class:`~repro.core.deep_mapping.LookupPlan`) gates this kernel twice
over: it runs only on keys that pass the existence mask *and* have no
``T_aux`` override (an aux row would overwrite the prediction anyway),
so on negative-heavy or high-churn batches most of the inference cost
never happens.  Parity with the reference path holds at the level of
predicted label codes (argmax), which is what the lookup algorithm
consumes; pre-summing group tables can shift float32 logits by an ulp —
enough to flip a near-tie argmax — so a structure built for compiled
lookups derives its auxiliary table from the *union* of this kernel's
and the reference session's prediction errors (see ``DeepMapping.fit``):
any key the two predictors disagree on is served from ``T_aux`` by
either path, preserving losslessness.  ``InferenceSession.run`` remains
the parity oracle in the test suite.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.encoding import KeyEncoder
from .inference import InferenceSession

__all__ = ["CompiledSession"]

#: Per-group table budget: tables are meant to sit in L2 while a batch
#: streams through them, and build cost must stay negligible.
_TABLE_BYTES_CAP = 1 << 20

#: One gathered digit group: (partial-sum table, key divisor, radix).
_Group = Tuple[np.ndarray, int, int]


class _FusedLayer:
    """First layer compiled to grouped gathers over flat keys."""

    def __init__(self, groups: List[_Group], relu: bool, slot: str):
        self.groups = groups
        self.relu = relu
        self.slot = slot


class _DenseLayer:
    """A cached-float32 GEMM layer (every layer after the first)."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray, relu: bool,
                 slot: str):
        self.weight = weight
        self.bias = bias
        self.relu = relu
        self.slot = slot


class CompiledSession:
    """Fused gather-based inference over flat integer keys.

    Parameters
    ----------
    session:
        The frozen reference model (any weight dtype).
    key_encoder:
        The fitted encoder whose one-hot layout the model was trained on;
        its ``input_dim`` must match the model's.
    """

    def __init__(self, session: InferenceSession, key_encoder: KeyEncoder):
        if key_encoder.widths is None:
            raise ValueError("key encoder is not fitted")
        if key_encoder.input_dim != session.spec.input_dim:
            raise ValueError(
                f"encoder input_dim {key_encoder.input_dim} does not match "
                f"model input_dim {session.spec.input_dim}"
            )
        self.session = session
        self.key_encoder = key_encoder
        self.tasks = session.tasks

        self._slot_widths: Dict[str, int] = {}
        # The first layer consuming the one-hot input gets the gather
        # fusion: the shared trunk's first layer when a trunk exists,
        # otherwise every head chain's first layer.
        shared = session._shared
        heads = session._heads
        # Slot names are namespaced ("trunk/" vs "head/") so a value
        # column whose name collides with an internal scope (e.g. a task
        # literally called "shared") can never alias a trunk buffer.
        self._trunk: List[object] = []
        for i, (w, b) in enumerate(shared):
            self._trunk.append(self._compile_layer(
                f"trunk/{i}", w, b, relu=True, fuse=i == 0))
        self._heads: Dict[str, List[object]] = {}
        for task in self.tasks:
            chain = heads[task]
            self._heads[task] = [
                self._compile_layer(f"head/{task}/{i}", w, b,
                                    relu=i < len(chain) - 1,
                                    fuse=i == 0 and not shared)
                for i, (w, b) in enumerate(chain)
            ]

        self._local = threading.local()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile_layer(self, scope: str, w: np.ndarray, b: np.ndarray,
                       relu: bool, fuse: bool):
        weight = np.ascontiguousarray(w.astype(np.float32))
        bias = np.ascontiguousarray(b.astype(np.float32).reshape(-1))
        self._slot_widths[scope] = weight.shape[1]
        if not fuse:
            return _DenseLayer(weight, bias, relu, scope)
        self._slot_widths[scope + "/tmp"] = weight.shape[1]
        return _FusedLayer(self._build_groups(weight, bias), relu, scope)

    def _build_groups(self, weight: np.ndarray,
                      bias: np.ndarray) -> List[_Group]:
        """Fold the first-layer weight rows into digit-group tables.

        The one-hot layout concatenates, per base ``b`` of width ``w``,
        ``w`` digit blocks of ``b`` columns; digit position ``p``
        (most-significant first) of key ``k`` is
        ``(k // b**(w-1-p)) % b``, and its one-hot block spans rows
        ``[offset + p*b, offset + (p+1)*b)`` of the weight.  A group of
        consecutive positions ``[lo, hi)`` therefore answers to the group
        index ``(k // b**(w-hi)) % b**(hi-lo)``, and its table holds the
        sum of one row per covered position for every possible index —
        precomputed once here.  The bias folds into the first table.
        """
        hidden = weight.shape[1]
        groups: List[_Group] = []
        offset = 0
        for base, width in zip(self.key_encoder.bases,
                               self.key_encoder.widths):
            size = 1
            while (size < width
                   and (base ** (size + 1)) * hidden * 4 <= _TABLE_BYTES_CAP):
                size += 1
            lo = 0
            while lo < width:
                hi = min(lo + size, width)
                table = None
                for p in range(lo, hi):
                    rows = weight[offset + p * base: offset + (p + 1) * base]
                    table = rows if table is None else (
                        table[:, None, :] + rows[None, :, :]
                    ).reshape(-1, hidden)
                groups.append((
                    np.ascontiguousarray(table),
                    base ** (width - hi),
                    base ** (hi - lo),
                ))
                lo = hi
            offset += base * width
        first = groups[0]
        groups[0] = (first[0] + bias, first[1], first[2])
        return groups

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _scratch(self, n: int):
        """Thread-local buffers sized for at least ``n`` rows.

        Thread-local because the sharded store's fan-out may run lookups
        against one structure from several threads at once; each thread
        reuses its own buffers across batches and chunks.
        """
        local = self._local
        if getattr(local, "capacity", -1) < n:
            local.capacity = n
            local.gidx = np.empty(n, dtype=np.int64)
            local.slots = {
                name: np.empty((n, width), dtype=np.float32)
                for name, width in self._slot_widths.items()
            }
        return local

    def _apply(self, layer, h: Optional[np.ndarray], keys: np.ndarray,
               local, n: int) -> np.ndarray:
        out = local.slots[layer.slot][:n]
        if isinstance(layer, _FusedLayer):
            gidx = local.gidx[:n]
            tmp = local.slots[layer.slot + "/tmp"][:n]
            for j, (table, shift, radix) in enumerate(layer.groups):
                if shift == 1:
                    # The least-significant group of every base: the
                    # divide is the identity, so skip one full 64-bit
                    # division pass over the batch.
                    np.remainder(keys, radix, out=gidx)
                else:
                    np.floor_divide(keys, shift, out=gidx)
                    np.remainder(gidx, radix, out=gidx)
                # mode="clip" skips bounds checking (indices are in
                # [0, radix) by construction) — several times faster.
                if j == 0:
                    np.take(table, gidx, axis=0, out=out, mode="clip")
                else:
                    np.take(table, gidx, axis=0, out=tmp, mode="clip")
                    np.add(out, tmp, out=out)
        else:
            np.matmul(h, layer.weight, out=out)
            np.add(out, layer.bias, out=out)
        if layer.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def _forward(self, keys: np.ndarray) -> Dict[str, np.ndarray]:
        """Logit views (into scratch) per task for one chunk of flat keys."""
        n = keys.size
        local = self._scratch(n)
        h: Optional[np.ndarray] = None
        for layer in self._trunk:
            h = self._apply(layer, h, keys, local, n)
        logits: Dict[str, np.ndarray] = {}
        for task, chain in self._heads.items():
            t = h
            for layer in chain:
                t = self._apply(layer, t, keys, local, n)
            logits[task] = t
        return logits

    # ------------------------------------------------------------------
    def run_logits(self, flat_keys: np.ndarray) -> Dict[str, np.ndarray]:
        """Raw output logits per task (copied out of scratch).

        Internally chunked so one huge call cannot permanently grow the
        thread-local scratch (the engine is long-lived and cached).
        """
        keys = self._checked(flat_keys)
        n = keys.size
        out = {
            task: np.empty((n, self.session.spec.output_dims[task]),
                           dtype=np.float32)
            for task in self.tasks
        }
        step = max(1, min(n, 65536)) if n else 1
        for start in range(0, n, step):
            stop = min(start + step, n)
            logits = self._forward(keys[start:stop])
            for task in self.tasks:
                out[task][start:stop] = logits[task]
        return out

    def run(
        self, flat_keys: np.ndarray, batch_size: Optional[int] = 65536
    ) -> Dict[str, np.ndarray]:
        """Predicted label codes per task (argmax), computed in chunks.

        Accepts flat integer keys; mirrors ``InferenceSession.run`` over
        the equivalent one-hot encoding.
        """
        keys = self._checked(flat_keys)
        n = keys.size
        out = {task: np.empty(n, dtype=np.int64) for task in self.tasks}
        if n == 0:
            return out
        # batch_size=None still caps the internal chunk: codes are
        # identical either way, and one huge call must not permanently
        # grow the cached engine's thread-local scratch.
        step = min(n, 65536) if batch_size is None else max(1, int(batch_size))
        for start in range(0, n, step):
            stop = min(start + step, n)
            logits = self._forward(keys[start:stop])
            for task in self.tasks:
                out[task][start:stop] = logits[task].argmax(axis=1)
        return out

    def _checked(self, flat_keys) -> np.ndarray:
        keys = np.asarray(flat_keys, dtype=np.int64).reshape(-1)
        if keys.size and keys.min() < 0:
            raise ValueError("keys must be non-negative")
        return keys

    def __repr__(self) -> str:
        n_tables = sum(
            len(layer.groups)
            for layer in [*self._trunk,
                          *(l for c in self._heads.values() for l in c)]
            if isinstance(layer, _FusedLayer)
        )
        return (
            f"CompiledSession(tasks={list(self.tasks)}, "
            f"group_tables={n_tables}, "
            f"params={self.session.param_count()})"
        )
