"""Optimizers over :class:`~repro.nn.layers.Parameter` objects.

State is keyed by parameter identity so that the MHAS weight bank (where
many sampled architectures share the same :class:`Parameter`) accumulates
consistent Adam moments across sampling iterations — the mechanism behind
ENAS-style parameter sharing that the paper builds on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "ExponentialDecay"]


class ExponentialDecay:
    """Learning-rate schedule ``lr = initial * decay**steps``.

    The paper trains memorization models at lr 0.001 decayed by 0.999
    per iteration (Sec. V-A6).
    """

    def __init__(self, initial: float, decay: float = 1.0, minimum: float = 0.0):
        if initial <= 0:
            raise ValueError("initial learning rate must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.initial = initial
        self.decay = decay
        self.minimum = minimum
        self.steps = 0

    def current(self) -> float:
        """Learning rate for the current step."""
        return max(self.minimum, self.initial * self.decay**self.steps)

    def advance(self) -> float:
        """Return the current rate, then advance the schedule."""
        rate = self.current()
        self.steps += 1
        return rate


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update`."""

    def __init__(self, lr: "float | ExponentialDecay" = 0.001):
        self.schedule = lr if isinstance(lr, ExponentialDecay) else ExponentialDecay(lr)

    def step(self, params: Iterable[Parameter]) -> None:
        """Apply one update to every parameter, then zero their grads."""
        rate = self.schedule.advance()
        for param in params:
            self._update(param, rate)
            param.zero_grad()

    def _update(self, param: Parameter, rate: float) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, lr: "float | ExponentialDecay" = 0.01, momentum: float = 0.0):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[int, Tuple[Parameter, np.ndarray]] = {}

    def _update(self, param: Parameter, rate: float) -> None:
        if self.momentum == 0.0:
            param.value -= rate * param.grad
            return
        key = id(param)
        entry = self._velocity.get(key)
        if entry is None:
            velocity = np.zeros_like(param.value)
        else:
            velocity = entry[1]
        velocity = self.momentum * velocity + param.grad
        self._velocity[key] = (param, velocity)
        param.value -= rate * velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer the paper uses for both the
    memorization models and the MHAS controller."""

    def __init__(
        self,
        lr: "float | ExponentialDecay" = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._state: Dict[int, Tuple[Parameter, np.ndarray, np.ndarray, int]] = {}

    def _update(self, param: Parameter, rate: float) -> None:
        key = id(param)
        entry = self._state.get(key)
        if entry is None:
            m = np.zeros_like(param.value)
            v = np.zeros_like(param.value)
            t = 0
        else:
            _, m, v, t = entry
        t += 1
        m = self.beta1 * m + (1.0 - self.beta1) * param.grad
        v = self.beta2 * v + (1.0 - self.beta2) * (param.grad * param.grad)
        self._state[key] = (param, m, v, t)
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param.value -= rate * m_hat / (np.sqrt(v_hat) + self.eps)
