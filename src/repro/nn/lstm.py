"""LSTM cell with backpropagation through time.

The MHAS controller (paper Sec. IV-C2, following ENAS) is an LSTM with 64
hidden units that emits architectural decisions autoregressively.  The cell
here provides the ``step`` / ``backward_step`` pair the controller's
REINFORCE update needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .activations import sigmoid, sigmoid_grad, tanh, tanh_grad
from .initializers import glorot_uniform, orthogonal, zeros
from .layers import Parameter

__all__ = ["LSTMCell", "LSTMState", "StepCache"]


@dataclass
class LSTMState:
    """Hidden and cell state of one LSTM layer."""

    h: np.ndarray
    c: np.ndarray

    @classmethod
    def zero(cls, batch: int, hidden: int) -> "LSTMState":
        """All-zeros initial state."""
        return cls(
            h=np.zeros((batch, hidden), dtype=np.float32),
            c=np.zeros((batch, hidden), dtype=np.float32),
        )


@dataclass
class StepCache:
    """Intermediates of one forward step, consumed by ``backward_step``."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMCell:
    """Single-layer LSTM cell.

    Gate layout in the fused weight matrices is ``[i | f | g | o]``.  The
    forget-gate bias is initialised to 1.0 (standard practice, keeps memory
    open early in training).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator,
                 name: str = "lstm"):
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = Parameter(glorot_uniform((input_dim, 4 * hidden_dim), rng),
                             f"{name}.Wx")
        self.w_h = Parameter(orthogonal((hidden_dim, 4 * hidden_dim), rng),
                             f"{name}.Wh")
        bias = zeros(4 * hidden_dim)
        bias[hidden_dim: 2 * hidden_dim] = 1.0  # forget gate
        self.b = Parameter(bias, f"{name}.b")

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, state: LSTMState) -> Tuple[LSTMState, StepCache]:
        """One forward step; returns the next state and a backprop cache."""
        h_dim = self.hidden_dim
        gates = x @ self.w_x.value + state.h @ self.w_h.value + self.b.value
        i = sigmoid(gates[:, :h_dim])
        f = sigmoid(gates[:, h_dim: 2 * h_dim])
        g = tanh(gates[:, 2 * h_dim: 3 * h_dim])
        o = sigmoid(gates[:, 3 * h_dim:])
        c = f * state.c + i * g
        tanh_c = tanh(c)
        h = o * tanh_c
        cache = StepCache(x=x, h_prev=state.h, c_prev=state.c,
                          i=i, f=f, g=g, o=o, c=c, tanh_c=tanh_c)
        return LSTMState(h=h, c=c), cache

    def backward_step(
        self, dh: np.ndarray, dc: np.ndarray, cache: StepCache
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop one step.

        Parameters are gradients of the loss w.r.t. this step's ``h`` and
        ``c`` outputs; returns ``(dx, dh_prev, dc_prev)`` and accumulates
        parameter gradients.
        """
        do = dh * cache.tanh_c
        dc_total = dc + dh * cache.o * tanh_grad(cache.tanh_c)
        di = dc_total * cache.g
        df = dc_total * cache.c_prev
        dg = dc_total * cache.i
        dc_prev = dc_total * cache.f

        dgates = np.concatenate(
            [
                di * sigmoid_grad(cache.i),
                df * sigmoid_grad(cache.f),
                dg * tanh_grad(cache.g),
                do * sigmoid_grad(cache.o),
            ],
            axis=1,
        ).astype(np.float32)

        self.w_x.grad += cache.x.T @ dgates
        self.w_h.grad += cache.h_prev.T @ dgates
        self.b.grad += dgates.sum(axis=0)
        dx = dgates @ self.w_x.value.T
        dh_prev = dgates @ self.w_h.value.T
        return dx, dh_prev, dc_prev

    def run_sequence(
        self, xs: List[np.ndarray], state: LSTMState
    ) -> Tuple[List[LSTMState], List[StepCache]]:
        """Convenience: run ``step`` over a list of inputs."""
        states: List[LSTMState] = []
        caches: List[StepCache] = []
        for x in xs:
            state, cache = self.step(x, state)
            states.append(state)
            caches.append(cache)
        return states, caches

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of the cell."""
        return [self.w_x, self.w_h, self.b]

    def __repr__(self) -> str:
        return f"LSTMCell({self.input_dim}->{self.hidden_dim})"
