"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "orthogonal", "zeros", "uniform"]


def glorot_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization — the standard choice for the
    fully connected layers the paper's search space is made of."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def orthogonal(shape, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization (used for LSTM recurrent weights)."""
    rows, cols = shape
    size = max(rows, cols)
    matrix = rng.standard_normal((size, size))
    q, _ = np.linalg.qr(matrix)
    return q[:rows, :cols].astype(np.float32)


def uniform(shape, rng: np.random.Generator, scale: float = 0.05) -> np.ndarray:
    """Uniform ``N(0, scale^2)``-style init: the paper initialises the MHAS
    controller parameters uniformly with sigma 0.05 (Sec. V-A6)."""
    return rng.uniform(-scale, scale, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    """All-zeros initializer (biases)."""
    return np.zeros(shape, dtype=np.float32)


def _fans(shape) -> tuple:
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
