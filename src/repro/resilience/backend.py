"""``ResilientBackend``: retry-with-backoff + circuit breaker over reads.

Wraps any :class:`~repro.storage.backends.StorageBackend`.  Read-side
operations (``read_bytes`` / ``read_view`` / ``exists`` / ``list`` /
``blob_version``) are retried under a :class:`RetryPolicy` and gated by
one :class:`CircuitBreaker` per wrapped backend; writes and deletes pass
straight through (they are already atomic, and blind write retries can
reorder against a concurrent writer).

Two failure classes are deliberately *not* retried:

- :class:`StoreNotFoundError` — an absent blob is an answer, not a
  transient fault.
- :class:`StoreCorruptedError` — corruption retries are owned by the
  cache layers (retry-*once* semantics in ``BlobCache``/``BufferPool``);
  retrying them here too would multiply the attempts.

Every read *capability* gets the same treatment as the core reads:
``read_view`` / ``blob_version`` / ``read_range`` / ``size`` are
retried under the policy and breaker when the inner backend has them,
while non-I/O capabilities (``batch`` / ``url`` / ``scheme`` /
``remote`` / ``stats`` / ``bind_stats`` / ``writable``) are forwarded
untouched — so capability sniffing (``getattr``) sees the same surface
as the inner backend, and a remote-backed read-only open is resilient
on every access path, not just ``read_bytes``.
"""

from __future__ import annotations

from typing import Optional

from .breaker import CircuitBreaker
from .errors import StoreCorruptedError, StoreNotFoundError
from .retry import RetryPolicy, retry

__all__ = ["ResilientBackend", "BACKEND_READ_RETRY"]

#: Default read-retry posture: three attempts, fast full-jitter backoff,
#: only transient I/O faults retried.
BACKEND_READ_RETRY = RetryPolicy(
    attempts=3, base_delay=0.02, max_delay=0.5, jitter=1.0,
    retry_on=(OSError, ConnectionError),
    give_up_on=(StoreNotFoundError, StoreCorruptedError),
)


class ResilientBackend:
    """Fault-tolerant read facade over a storage backend."""

    def __init__(self, inner, *,
                 policy: RetryPolicy = BACKEND_READ_RETRY,
                 breaker: Optional[CircuitBreaker] = None):
        self.inner = inner
        self.policy = policy
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name=f"backend:{getattr(inner, 'url', repr(inner))}")

    # -- retried reads -----------------------------------------------------
    def _read(self, fn):
        return retry(fn, self.policy, breaker=self.breaker)

    def read_bytes(self, name: str) -> bytes:
        return self._read(lambda: self.inner.read_bytes(name))

    def exists(self, name: str) -> bool:
        return self._read(lambda: self.inner.exists(name))

    def list(self):
        return self._read(self.inner.list)

    # -- pass-through writes ----------------------------------------------
    def write_bytes(self, name: str, payload) -> int:
        return self.inner.write_bytes(name, payload)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    #: Read capabilities retried (per call) under the policy + breaker.
    _RETRIED_CAPS = ("read_view", "blob_version", "size")
    #: Non-I/O capabilities forwarded verbatim from the inner backend.
    _FORWARDED_CAPS = ("batch", "url", "scheme", "remote", "stats",
                       "bind_stats", "writable")

    # -- capabilities, present iff the inner backend has them --------------
    def __getattr__(self, attr):
        if attr in self._RETRIED_CAPS:
            inner_value = getattr(self.inner, attr)  # may raise Attribute
            return lambda name: self._read(lambda: inner_value(name))
        if attr == "read_range":
            inner_range = getattr(self.inner, attr)
            return lambda name, start, length: self._read(
                lambda: inner_range(name, start, length))
        if attr in self._FORWARDED_CAPS:
            return getattr(self.inner, attr)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {attr!r}")

    def __repr__(self) -> str:
        return f"ResilientBackend({self.inner!r}, {self.breaker!r})"
