"""Deadline budgets: one object carried through a call chain.

A :class:`Deadline` is an absolute expiry on a monotonic clock.  It is
created once at the edge (a serve request's ``deadline_ms``, a client
call's ``timeout``) and passed *down* — every layer asks ``remaining()``
for the budget it may spend and ``check()`` before starting work it
could not finish in time.  This is the budget-propagation idiom: a
10 ms request that already spent 8 ms queueing gives the store call
2 ms, not a fresh 10.

``None`` is the conventional "no deadline" at call sites; every helper
here accepts it.  :data:`DEFAULT_TIMEOUT_S` is the fleet-wide default
for *control-plane* waits (server startup, shutdown joins, client
connects) that previously hard-coded ``timeout=30`` literals.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .errors import DeadlineExceeded

__all__ = ["Deadline", "DEFAULT_TIMEOUT_S", "default_timeout"]

#: Default bound for control-plane waits (startup/shutdown/connect).
#: Data-plane lookups have no implicit deadline — callers opt in.
DEFAULT_TIMEOUT_S = 30.0


def default_timeout(override: Optional[float] = None) -> float:
    """``override`` when given, else :data:`DEFAULT_TIMEOUT_S`."""
    return DEFAULT_TIMEOUT_S if override is None else float(override)


class Deadline:
    """An absolute expiry on an injectable monotonic clock.

    The clock is injectable for two reasons: tests control time, and the
    asyncio serve tier builds deadlines on ``loop.time()`` so budgets
    agree with the loop's own timers.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(self, budget_s: float,
                 clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self.expires_at = clock() + float(budget_s)

    @classmethod
    def after_ms(cls, budget_ms: float,
                 clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """Deadline ``budget_ms`` milliseconds from now."""
        return cls(float(budget_ms) / 1000.0, clock=clock)

    # -- queries -----------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self.clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                f"{what} exceeded its deadline by {-remaining * 1000:.1f} ms")

    # -- combinators -------------------------------------------------------
    def min(self, other: Optional["Deadline"]) -> "Deadline":
        """The earlier of two deadlines (``other`` may be None)."""
        if other is None or self.expires_at <= other.expires_at:
            return self
        return other

    @staticmethod
    def earliest(deadlines) -> Optional["Deadline"]:
        """Earliest of an iterable of ``Optional[Deadline]``; None when
        every element is None (an unbounded batch)."""
        result: Optional[Deadline] = None
        for deadline in deadlines:
            if deadline is None:
                continue
            if result is None or deadline.expires_at < result.expires_at:
                result = deadline
        return result

    def timeout_or(self, cap: Optional[float] = None) -> float:
        """Remaining budget clamped to ``>= 0`` and, when given, ``cap`` —
        the shape ``future.result(timeout=...)`` and socket timeouts want."""
        remaining = max(0.0, self.remaining())
        return remaining if cap is None else min(remaining, cap)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining() * 1000:.1f}ms)"
