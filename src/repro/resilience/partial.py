"""Partial lookup results: fault-isolated sharded reads.

Under ``on_shard_error="partial"`` a sharded lookup that loses a shard
(exception or deadline) still returns — as a :class:`PartialResult`,
a :class:`~repro.core.deep_mapping.LookupResult` plus:

- ``failed_mask[i]`` — True where key ``i`` was routed to a shard that
  failed.  For those positions ``found`` is forced False and ``values``
  are meaningless placeholders; for every other position the result is
  bit-identical to a fully healthy lookup.
- ``shard_errors`` — ``{shard_ordinal: exception}`` for the post-mortem.

Callers that cannot tolerate gaps call :meth:`raise_if_failed`; callers
that can (a serving tier shedding one bad replica) re-drive only the
``failed_mask`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..core.deep_mapping import LookupResult
from .errors import PartialResultError

__all__ = ["PartialResult"]


@dataclass
class PartialResult(LookupResult):
    """A lookup that lost one or more shards but kept the rest."""

    #: True where the key's shard failed; ``found`` is False there.
    failed_mask: np.ndarray = None
    #: Shard ordinal -> the exception that took it out.
    shard_errors: Dict[int, BaseException] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not bool(self.failed_mask.any())

    @property
    def n_failed(self) -> int:
        return int(self.failed_mask.sum())

    def raise_if_failed(self) -> "PartialResult":
        """Promote to a hard failure when any key was lost."""
        if not self.complete:
            ordinals = sorted(self.shard_errors)
            causes = "; ".join(
                f"shard {o}: {type(self.shard_errors[o]).__name__}: "
                f"{self.shard_errors[o]}" for o in ordinals)
            error = PartialResultError(
                f"{self.n_failed} of {len(self)} keys lost to "
                f"{len(ordinals)} failed shard(s) [{causes}]")
            if ordinals:
                error.__cause__ = self.shard_errors[ordinals[0]]
            raise error
        return self
