"""Hedged requests: bound straggler tails with one backup attempt.

A fused batch fanned out across N shards finishes when its *slowest*
shard does — one degraded backend (cold cache, GC pause, chaos-injected
latency) sets the whole batch's tail.  The classic fix (Dean & Barroso,
"The Tail at Scale") is the *hedged request*: when an attempt runs well
past what its peers needed, launch one backup and take whichever
finishes first.

:class:`HedgeController` holds the adaptive part — an EWMA of recent
per-shard attempt durations that turns "well past its peers" into a
concrete delay — plus the hedge budget that keeps backups a tail
remedy, not a load doubler:

- ``hedge_delay_s(peer_durations)`` — hedge an attempt still running
  after ``delay_factor ×`` the current duration estimate (this batch's
  completed peers when available, the cross-batch EWMA otherwise),
  floored at ``min_delay_ms``.  With no estimate at all (cold start),
  no hedging: the first batches just measure.
- ``batch_budget(n_jobs)`` — at most ``ceil(max_fraction × n_jobs)``
  backups per batch, so even a pathological store hedges a bounded
  fraction of its work (the acceptance gate holds the healthy-path
  hedge *rate* under 10%).

**Idempotency.** Hedging re-executes a shard lookup that may still be
running.  That is safe here by construction: shard lookups are pure
reads of an immutable snapshot (the topology tuple is swapped atomically
— an attempt never sees a half-rebuilt shard), and both attempts
scatter *bit-identical* bytes into disjoint destination rows of the
batch's output arrays, so original and backup racing each other write
the same values in either order.  The loser's only cost is wasted work,
which the budget bounds.

Thread-safe: the fan-out loop records durations from the dispatch
thread while ``lookup_async`` callers may overlap.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["HedgePolicy", "HedgeController"]


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs for when a straggling shard attempt earns a backup."""

    #: Hedge an attempt running longer than this multiple of the
    #: current per-attempt duration estimate.
    delay_factor: float = 4.0
    #: Never hedge before this many milliseconds, however fast the
    #: estimate says peers are — guards against hedging jitter.
    min_delay_ms: float = 2.0
    #: At most this fraction of a batch's jobs may be hedged.
    max_fraction: float = 0.25
    #: EWMA smoothing for the cross-batch duration estimate.
    ewma_alpha: float = 0.2

    def __post_init__(self):
        if self.delay_factor < 1.0:
            raise ValueError("delay_factor must be >= 1")
        if self.min_delay_ms < 0:
            raise ValueError("min_delay_ms must be >= 0")
        if not 0.0 < self.max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


class HedgeController:
    """Adaptive hedge-delay estimator shared by a store's batches."""

    def __init__(self, policy: Optional[HedgePolicy] = None):
        self.policy = policy or HedgePolicy()
        self._lock = threading.Lock()
        self._ewma_s: Optional[float] = None

    def record(self, seconds: float) -> None:
        """Feed one completed attempt's duration into the estimate."""
        if seconds <= 0:
            return
        with self._lock:
            if self._ewma_s is None:
                self._ewma_s = seconds
            else:
                alpha = self.policy.ewma_alpha
                self._ewma_s = alpha * seconds + (1 - alpha) * self._ewma_s

    @property
    def estimate_s(self) -> Optional[float]:
        with self._lock:
            return self._ewma_s

    def hedge_delay_s(
            self, peer_durations: Sequence[float] = ()) -> Optional[float]:
        """How long an attempt may run before earning a backup.

        Prefers the median of *this batch's* completed peers (the most
        relevant sample: same store state, same load), falling back to
        the cross-batch EWMA; None while both are cold (no hedging on a
        store that has never completed an attempt).
        """
        basis: Optional[float]
        if peer_durations:
            ordered = sorted(peer_durations)
            basis = ordered[len(ordered) // 2]
        else:
            basis = self.estimate_s
        if basis is None or basis <= 0:
            return None
        return max(self.policy.min_delay_ms / 1000.0,
                   self.policy.delay_factor * basis)

    def batch_budget(self, n_jobs: int) -> int:
        """Backup attempts allowed for a batch of ``n_jobs`` (>= 1)."""
        if n_jobs <= 0:
            return 0
        return max(1, math.ceil(self.policy.max_fraction * n_jobs))

    def __repr__(self) -> str:
        return (f"HedgeController(estimate_s={self.estimate_s}, "
                f"factor={self.policy.delay_factor})")
