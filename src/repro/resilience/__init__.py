"""Cross-cutting resilience primitives: deadlines, retries, breakers,
typed errors, and partial results.

This package has no dependencies on the rest of the library except
:class:`~repro.core.deep_mapping.LookupResult` (the base of
:class:`PartialResult`), so every layer — storage, shard, serve — can
import it without cycles.  See ``docs/resilience.md`` for the full
semantics.
"""

from .backend import BACKEND_READ_RETRY, ResilientBackend
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .deadline import DEFAULT_TIMEOUT_S, Deadline, default_timeout
from .errors import (CircuitOpenError, DeadlineExceeded, PartialResultError,
                     ResilienceError, StoreCorruptedError, StoreNotFoundError)
from .hedging import HedgeController, HedgePolicy
from .retry import RetryPolicy, retry

__all__ = [
    "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
    "Deadline", "DEFAULT_TIMEOUT_S", "default_timeout",
    "ResilienceError", "StoreNotFoundError", "StoreCorruptedError",
    "DeadlineExceeded", "PartialResultError", "CircuitOpenError",
    "PartialResult",
    "RetryPolicy", "retry",
    "HedgePolicy", "HedgeController",
    "ResilientBackend", "BACKEND_READ_RETRY",
]


def __getattr__(name):
    # PartialResult subclasses core.LookupResult, and core transitively
    # imports storage, which imports resilience.errors — loading it
    # eagerly here would close an import cycle.  PEP 562 keeps
    # ``repro.resilience.PartialResult`` working without it.
    if name == "PartialResult":
        from .partial import PartialResult
        return PartialResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
