"""Typed failure taxonomy for the store, shard, and serve layers.

Every error class here deliberately subclasses the stdlib exception the
pre-resilience code used to leak, so existing ``except`` sites (and the
tests that pin them) keep working while new code can catch the precise
condition:

- :class:`StoreNotFoundError` — absent blob / store.  Subclasses both
  ``KeyError`` (the :class:`~repro.storage.backends.StorageBackend`
  contract for a missing blob) and ``FileNotFoundError`` (what
  ``repro.open`` historically raised for an absent store URL).
- :class:`StoreCorruptedError` — present but unreadable: bad magic,
  truncation, checksum mismatch, undecompressable partition, broken
  archive.  Subclasses ``pickle.UnpicklingError`` because that is what
  every pre-checksum load path surfaced for mangled payloads.
- :class:`DeadlineExceeded` — a time budget ran out.  Subclasses
  ``TimeoutError`` so generic timeout handling sees it.
- :class:`PartialResultError` — a sharded lookup under
  ``on_shard_error="partial"`` came back with failed keys and the caller
  asked :meth:`~repro.resilience.partial.PartialResult.raise_if_failed`.
- :class:`CircuitOpenError` — a :class:`~repro.resilience.breaker.
  CircuitBreaker` is refusing calls after repeated failures; callers can
  back off without paying the failing call's latency.
"""

from __future__ import annotations

import pickle

__all__ = [
    "ResilienceError",
    "StoreNotFoundError",
    "StoreCorruptedError",
    "DeadlineExceeded",
    "PartialResultError",
    "CircuitOpenError",
]


class ResilienceError(Exception):
    """Mixin root so ``except ResilienceError`` catches the whole family."""


class StoreNotFoundError(ResilienceError, KeyError, FileNotFoundError):
    """A blob or store that should exist does not.

    Messages name the blob and the backend URL (``no blob named 'x' in
    file:///data/store``) so a fleet operator can tell *which* replica is
    missing *what* without reproducing locally.
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr()-quote it
        return self.args[0] if len(self.args) == 1 else super().__str__()


class StoreCorruptedError(ResilienceError, pickle.UnpicklingError):
    """A blob exists but its bytes are not what was written.

    Raised for bad container magic, truncation, per-segment checksum
    mismatches, undecompressable partitions, and broken zip archives.
    Cache layers (:class:`~repro.storage.blob_cache.BlobCache`,
    :class:`~repro.storage.buffer_pool.BufferPool`) treat this as a
    cache-miss-and-retry-once — a torn read racing an atomic replace
    heals itself — before letting it propagate.
    """


class DeadlineExceeded(ResilienceError, TimeoutError):
    """A :class:`~repro.resilience.deadline.Deadline` budget ran out."""


class PartialResultError(ResilienceError, RuntimeError):
    """A partial sharded lookup was asked to act like a complete one."""


class CircuitOpenError(ResilienceError, ConnectionError):
    """A circuit breaker is open: the callee failed repeatedly and calls
    are being refused until the reset timeout elapses."""
