"""Circuit breaker: stop calling a callee that keeps failing.

The classic three-state machine, one instance per protected resource
(a shard ordinal, a storage backend):

- **closed** — calls flow; consecutive failures are counted.
- **open** — after ``failure_threshold`` consecutive failures, calls are
  refused (:class:`CircuitOpenError`) for ``reset_timeout`` seconds.
  Refusal is the point: the caller fails in microseconds instead of
  stacking timeouts on a dead backend.
- **half-open** — after the timeout, a limited number of probe calls are
  let through.  A probe success closes the circuit; a probe failure
  reopens it for another full timeout.

Thread-safe; the clock is injectable so tests drive state transitions
without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

from .errors import CircuitOpenError

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-resource failure gate with automatic recovery probing."""

    def __init__(self, name: str = "breaker", *,
                 failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 half_open_max: int = 1,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_max = int(half_open_max)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0          # consecutive, while closed
        self._opened_at = 0.0
        self._probes = 0            # in flight, while half-open

    # -- state -------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._poll()

    def _poll(self) -> str:
        """Advance open -> half-open on timeout (lock held)."""
        if self._state == OPEN and \
                self.clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._probes = 0
        return self._state

    # -- protocol ----------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits at most
        ``half_open_max`` concurrent probes."""
        with self._lock:
            state = self._poll()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            if self._probes < self.half_open_max:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._probes = 0

    def release(self) -> None:
        """Return a probe slot granted by :meth:`allow` whose call ended
        in a *neutral* outcome — a definitive answer (a ``give_up_on``
        exception like an absent blob) or an exception the retry policy
        does not classify.  Neither closes nor reopens the circuit; it
        only frees the half-open slot so the next probe can run instead
        of the breaker wedging half-open forever.
        """
        with self._lock:
            if self._state == HALF_OPEN and self._probes > 0:
                self._probes -= 1

    def record_failure(self) -> None:
        with self._lock:
            state = self._poll()
            if state == HALF_OPEN:
                # The probe failed: back to a full open period.
                self._state = OPEN
                self._opened_at = self.clock()
                self._probes = 0
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self.clock()

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker, refusing when open."""
        if not self.allow():
            with self._lock:
                wait = max(0.0, self.reset_timeout
                           - (self.clock() - self._opened_at))
            raise CircuitOpenError(
                f"{self.name}: circuit open after "
                f"{self.failure_threshold} consecutive failures; "
                f"retry in {wait:.1f}s")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        """Force-close (operator override / test teardown)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probes = 0

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"threshold={self.failure_threshold})")
