"""``retry()``: bounded retries with exponential backoff and jitter.

The policy is a frozen value object so call sites can share tuned
instances (``_BACKEND_READ_RETRY`` in the storage layer, connect retries
in the TCP client).  Backoff is full-jitter exponential — sleep a
uniform fraction of ``base_delay * 2**attempt`` — which de-synchronizes
a thundering herd of readers hitting the same recovering backend.

A :class:`~repro.resilience.deadline.Deadline` caps the whole loop: no
attempt (or backoff sleep) starts once the budget is spent, and the
failure surfaces as :class:`DeadlineExceeded` chained from the last real
error.  A :class:`~repro.resilience.breaker.CircuitBreaker` composes the
other way around: when it is open, :func:`retry` fails fast with
:class:`CircuitOpenError` instead of burning attempts on a callee that
is known-down.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from .deadline import Deadline
from .errors import CircuitOpenError, DeadlineExceeded

__all__ = ["RetryPolicy", "retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and on what to retry."""

    #: Total attempts, including the first (``1`` = no retries).
    attempts: int = 3
    #: First backoff ceiling in seconds; doubles every attempt.
    base_delay: float = 0.05
    #: Upper bound any single backoff sleep is clamped to.
    max_delay: float = 2.0
    #: Fraction of the exponential ceiling actually slept is drawn from
    #: ``[1 - jitter, 1]`` — ``1.0`` is full jitter, ``0.0`` none.
    jitter: float = 1.0
    #: Exception classes worth retrying; anything else propagates at once.
    retry_on: Tuple[Type[BaseException], ...] = (OSError,)
    #: Subclasses of ``retry_on`` that are *definitive* answers, not
    #: transient faults (e.g. ``StoreNotFoundError`` is a
    #: ``FileNotFoundError``/``OSError``, but an absent blob will not
    #: appear by retrying).  They propagate immediately and do not feed
    #: the breaker.
    give_up_on: Tuple[Type[BaseException], ...] = ()

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        floor = ceiling * (1.0 - self.jitter)
        return rng.uniform(floor, ceiling)


def retry(fn: Callable[[], T],
          policy: Optional[RetryPolicy] = None,
          *,
          deadline: Optional[Deadline] = None,
          breaker: Optional["CircuitBreaker"] = None,
          sleep: Callable[[float], None] = time.sleep,
          rng: Optional[random.Random] = None) -> T:
    """Call ``fn()`` until it succeeds, retries are exhausted, the
    deadline expires, or the breaker opens.

    The breaker observes every attempt (success closes it, failure feeds
    it) and is consulted before each one, so a backend that dies mid-loop
    stops being hammered as soon as its breaker trips.
    """
    policy = policy or RetryPolicy()
    rng = rng or random.Random()
    last_error: Optional[BaseException] = None
    for attempt in range(max(1, policy.attempts)):
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"retry budget exhausted after {attempt} attempt(s)"
            ) from last_error
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"{breaker.name}: circuit open, call refused"
            ) from last_error
        try:
            result = fn()
        except policy.retry_on as exc:
            if policy.give_up_on and isinstance(exc, policy.give_up_on):
                # A definitive answer, not a fault: it does not feed the
                # breaker, but the probe slot :meth:`allow` granted must
                # still come back or a half-open breaker wedges forever.
                if breaker is not None:
                    breaker.release()
                raise
            last_error = exc
            if breaker is not None:
                breaker.record_failure()
            if attempt + 1 >= policy.attempts:
                raise
            pause = policy.backoff(attempt, rng)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    raise DeadlineExceeded(
                        f"deadline expired after {attempt + 1} attempt(s)"
                    ) from exc
                pause = min(pause, remaining)
            if pause > 0.0:
                sleep(pause)
        except BaseException:
            # Outside the policy's vocabulary entirely: propagate, but
            # release the probe slot first (same wedge as give-up-on).
            if breaker is not None:
                breaker.release()
            raise
        else:
            if breaker is not None:
                breaker.record_success()
            return result
    raise last_error  # pragma: no cover - loop always raises or returns
