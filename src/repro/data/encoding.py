"""Key and value encodings for the learned mapping.

The paper one-hot encodes keys and label-encodes categorical values
(Sec. IV-A).  Concretely:

- **Keys**: a (possibly composite) key is flattened to a single non-negative
  integer by :class:`CompositeKeyCodec` (mixed-radix over the per-attribute
  domains), then :class:`KeyEncoder` expands that integer into fixed-width
  base-``b`` digits, each one-hot encoded — the input feature vector.  This
  keeps the input width logarithmic in the key domain, exactly like the
  reference implementation.
- **Values**: each value column gets a :class:`ValueEncoder` mapping original
  values to dense label codes; the collection of them is the paper's decode
  map ``f_decode``, stored alongside the model (:class:`DecodeMap`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.serializer import serialized_size

__all__ = ["CompositeKeyCodec", "KeyEncoder", "ValueEncoder", "DecodeMap"]

#: Refuse flattened key domains larger than this (bit-vector would explode).
_MAX_DOMAIN = 1 << 40


class CompositeKeyCodec:
    """Flattens ``l`` integer key columns into one int64 key.

    Uses mixed-radix positional encoding over each column's observed domain
    ``[min, max]``.  The flattened domain (product of extents) also sizes the
    existence bit vector, so it is capped at ``2**40``.
    """

    def __init__(self, key_names: Sequence[str]):
        if not key_names:
            raise ValueError("at least one key column required")
        self.key_names = tuple(key_names)
        self._mins: Optional[np.ndarray] = None
        self._extents: Optional[np.ndarray] = None
        self._strides: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, columns: Dict[str, np.ndarray],
            headroom: int = 0) -> "CompositeKeyCodec":
        """Learn per-column domains from data.

        ``headroom`` widens the *last-fitted* (slowest-varying) column's
        extent so future insertions with larger key values still flatten
        into the domain (used by the modification workflows).
        """
        mins, extents = [], []
        for i, name in enumerate(self.key_names):
            col = np.asarray(columns[name], dtype=np.int64)
            if col.size == 0:
                raise ValueError(f"key column {name!r} is empty")
            lo, hi = int(col.min()), int(col.max())
            extent = hi - lo + 1
            if i == 0:
                extent += int(headroom)
            mins.append(lo)
            extents.append(extent)
        self._mins = np.array(mins, dtype=np.int64)
        self._extents = np.array(extents, dtype=np.int64)
        strides = np.ones(len(extents), dtype=np.int64)
        for i in range(len(extents) - 2, -1, -1):
            strides[i] = strides[i + 1] * extents[i + 1]
        self._strides = strides
        if self.domain_size > _MAX_DOMAIN:
            raise ValueError(
                f"flattened key domain {self.domain_size} exceeds {_MAX_DOMAIN}"
            )
        return self

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._mins is not None

    @property
    def domain_size(self) -> int:
        """Size of the flattened key domain (bit-vector length)."""
        self._require_fitted()
        return int(np.prod(self._extents))

    # ------------------------------------------------------------------
    def flatten(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        """Flatten key columns to int64 codes in ``[0, domain_size)``.

        Raises ``ValueError`` for key values outside the fitted domain.
        """
        self._require_fitted()
        n = len(np.asarray(columns[self.key_names[0]]))
        flat = np.zeros(n, dtype=np.int64)
        for i, name in enumerate(self.key_names):
            col = np.asarray(columns[name], dtype=np.int64) - self._mins[i]
            if col.size and (col.min() < 0 or col.max() >= self._extents[i]):
                raise ValueError(
                    f"key column {name!r} has values outside the fitted domain"
                )
            flat += col * self._strides[i]
        return flat

    def extend_domain(self, columns: Dict[str, np.ndarray]) -> bool:
        """Grow the domain to cover new key values, preserving old codes.

        Existing flat codes stay valid only when the growth is confined to
        the *upper* end of the slowest-varying (first) key column — its
        stride multiplies the later extents, which must not change.
        Returns False (leaving the codec untouched) when the new keys
        cannot be accommodated that way; callers then rebuild from scratch.
        """
        self._require_fitted()
        new_first_max = None
        for i, name in enumerate(self.key_names):
            col = np.asarray(columns[name], dtype=np.int64)
            if col.size == 0:
                continue
            lo, hi = int(col.min()), int(col.max())
            if lo < self._mins[i]:
                return False
            extent_needed = hi - int(self._mins[i]) + 1
            if i == 0:
                new_first_max = max(extent_needed, int(self._extents[0]))
            elif extent_needed > self._extents[i]:
                return False
        if new_first_max is not None and new_first_max > self._extents[0]:
            proposed = int(new_first_max) * int(np.prod(self._extents[1:]))
            if proposed > _MAX_DOMAIN:
                return False
            self._extents = self._extents.copy()
            self._extents[0] = new_first_max
        return True

    def try_flatten(
        self, columns: Dict[str, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`flatten` but tolerant of out-of-domain keys.

        Returns ``(flat, in_domain)``; rows outside the fitted domain get
        flat code 0 and ``in_domain`` False.  Used at query time, where an
        unknown key simply means "does not exist".
        """
        self._require_fitted()
        n = len(np.asarray(columns[self.key_names[0]]))
        flat = np.zeros(n, dtype=np.int64)
        ok = np.ones(n, dtype=bool)
        for i, name in enumerate(self.key_names):
            col = np.asarray(columns[name], dtype=np.int64) - self._mins[i]
            ok &= (col >= 0) & (col < self._extents[i])
            flat += np.clip(col, 0, self._extents[i] - 1) * self._strides[i]
        flat[~ok] = 0
        return flat, ok

    def unflatten(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        """Invert :meth:`flatten`."""
        self._require_fitted()
        flat = np.asarray(flat, dtype=np.int64)
        out: Dict[str, np.ndarray] = {}
        for i, name in enumerate(self.key_names):
            digit = (flat // self._strides[i]) % self._extents[i]
            out[name] = digit + self._mins[i]
        return out

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, object]:
        """Picklable state."""
        self._require_fitted()
        return {
            "key_names": self.key_names,
            "mins": self._mins,
            "extents": self._extents,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CompositeKeyCodec":
        """Restore from :meth:`to_state`."""
        codec = cls(state["key_names"])
        codec._mins = np.asarray(state["mins"], dtype=np.int64)
        codec._extents = np.asarray(state["extents"], dtype=np.int64)
        strides = np.ones(len(codec._extents), dtype=np.int64)
        for i in range(len(codec._extents) - 2, -1, -1):
            strides[i] = strides[i + 1] * codec._extents[i + 1]
        codec._strides = strides
        return codec

    def _require_fitted(self) -> None:
        if self._mins is None:
            raise RuntimeError("codec is not fitted")

    def __repr__(self) -> str:
        if not self.fitted:
            return f"CompositeKeyCodec(key={self.key_names}, unfitted)"
        return (
            f"CompositeKeyCodec(key={self.key_names}, "
            f"domain={self.domain_size})"
        )


class KeyEncoder:
    """Fixed-width digit one-hot encoding of flattened integer keys.

    A key ``k`` is written in base ``b`` using ``width_b`` digits; each
    digit becomes a one-hot block.  This is the feature encoding the
    reference DeepMapping implementation uses: compact (logarithmic in the
    domain) yet positional enough for an MLP to learn digit-aligned
    patterns.

    ``base`` may also be a *tuple* of bases: the key is then expanded in
    every base and the one-hot blocks concatenated.  Co-prime bases hand
    the network the key's residues modulo each base (and their powers), so
    periodic value patterns whose period divides any base power become
    directly readable — a Chinese-remainder-style feature map that makes
    cross-product tables (TPC-DS ``customer_demographics``) learnable by
    small models.  This is a reproduction-side extension; the paper uses a
    single base.
    """

    def __init__(self, base=10, width: Optional[int] = None):
        bases = (base,) if isinstance(base, int) else tuple(base)
        if not bases or any(b < 2 for b in bases):
            raise ValueError("every base must be >= 2")
        self.bases = bases
        self.base = bases[0]  # kept for backwards-compatible introspection
        self.widths: Optional[Tuple[int, ...]] = None
        if width is not None:
            self.widths = tuple(width for _ in bases) if isinstance(width, int) \
                else tuple(width)

    def fit(self, max_key: int) -> "KeyEncoder":
        """Choose per-base digit widths from the largest key to encode."""
        if max_key < 0:
            raise ValueError("max_key must be non-negative")
        widths = []
        for base in self.bases:
            width = 1
            while base**width <= max_key:
                width += 1
            widths.append(width)
        self.widths = tuple(widths)
        return self

    @property
    def width(self) -> Optional[int]:
        """Digit width of the first base (None before :meth:`fit`)."""
        return self.widths[0] if self.widths else None

    @property
    def input_dim(self) -> int:
        """Width of the encoded feature vector."""
        self._require_fitted()
        return sum(w * b for w, b in zip(self.widths, self.bases))

    def encode(self, keys) -> np.ndarray:
        """Encode int keys into float32 one-hot digit features."""
        self._require_fitted()
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and keys.min() < 0:
            raise ValueError("keys must be non-negative")
        n = keys.size
        out = np.zeros((n, self.input_dim), dtype=np.float32)
        rows = np.arange(n)
        offset = 0
        for base, width in zip(self.bases, self.widths):
            rest = keys.copy()
            for d in range(width - 1, -1, -1):
                digit = rest % base
                rest //= base
                out[rows, offset + d * base + digit] = 1.0
            offset += width * base
        return out

    def digits(self, keys, base_index: int = 0) -> np.ndarray:
        """Digit matrix (n, width) for one base, most significant first."""
        self._require_fitted()
        base = self.bases[base_index]
        width = self.widths[base_index]
        keys = np.asarray(keys, dtype=np.int64)
        out = np.zeros((keys.size, width), dtype=np.int64)
        rest = keys.copy()
        for d in range(width - 1, -1, -1):
            out[:, d] = rest % base
            rest //= base
        return out

    def to_state(self) -> Dict[str, object]:
        """Picklable state."""
        self._require_fitted()
        return {"bases": self.bases, "widths": self.widths}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "KeyEncoder":
        """Restore from :meth:`to_state` (tolerates the old single-base
        layout)."""
        if "bases" in state:
            encoder = cls(base=tuple(state["bases"]))
            encoder.widths = tuple(state["widths"])
            return encoder
        return cls(base=state["base"], width=state["width"])

    def _require_fitted(self) -> None:
        if self.widths is None:
            raise RuntimeError("encoder is not fitted (width unknown)")

    def __repr__(self) -> str:
        return f"KeyEncoder(bases={self.bases}, widths={self.widths})"


class ValueEncoder:
    """Dense label encoding for one value column.

    The vocabulary is append-only: :meth:`extend` registers values first
    seen at insert/update time without disturbing existing codes (the model
    can never predict the new codes, so such rows always land in the
    auxiliary table — exactly the paper's modification semantics).
    """

    def __init__(self, name: str):
        self.name = name
        self._vocab: Optional[np.ndarray] = None
        self._sorted: Optional[np.ndarray] = None
        self._sorted_to_code: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "ValueEncoder":
        """Build the vocabulary from observed values."""
        self._vocab = np.unique(np.asarray(values))
        self._rebuild_index()
        return self

    def extend(self, values: np.ndarray) -> int:
        """Append unseen values to the vocabulary; returns how many."""
        self._require_fitted()
        arr = np.asarray(values)
        _, ok = self.try_encode(arr)
        fresh = np.unique(arr[~ok])
        if fresh.size:
            self._vocab = np.concatenate([self._vocab, fresh])
            self._rebuild_index()
        return int(fresh.size)

    def _rebuild_index(self) -> None:
        order = np.argsort(self._vocab, kind="stable")
        self._sorted = self._vocab[order]
        self._sorted_to_code = order.astype(np.int64)

    @property
    def cardinality(self) -> int:
        """Vocabulary size (softmax width of this task's head)."""
        self._require_fitted()
        return int(self._vocab.size)

    @property
    def vocab(self) -> np.ndarray:
        """The sorted vocabulary array."""
        self._require_fitted()
        return self._vocab

    def encode(self, values) -> np.ndarray:
        """Values -> int64 codes; raises on out-of-vocabulary values."""
        codes, ok = self.try_encode(values)
        if not ok.all():
            raise ValueError(f"out-of-vocabulary values for column {self.name!r}")
        return codes

    def try_encode(self, values) -> Tuple[np.ndarray, np.ndarray]:
        """Like :meth:`encode` but returns ``(codes, in_vocab_mask)``;
        out-of-vocabulary rows get code 0 and mask False."""
        self._require_fitted()
        arr = np.asarray(values)
        pos = np.searchsorted(self._sorted, arr)
        pos = np.minimum(pos, self._sorted.size - 1)
        ok = self._sorted[pos] == arr
        codes = np.where(ok, self._sorted_to_code[pos], 0)
        return codes.astype(np.int64), ok

    def decode(self, codes) -> np.ndarray:
        """Codes -> original values."""
        self._require_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= self._vocab.size):
            raise ValueError(f"code out of range for column {self.name!r}")
        return self._vocab[codes]

    def to_state(self) -> Dict[str, object]:
        """Picklable state."""
        self._require_fitted()
        return {"name": self.name, "vocab": self._vocab}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ValueEncoder":
        """Restore from :meth:`to_state`."""
        enc = cls(state["name"])
        enc._vocab = np.asarray(state["vocab"])
        enc._rebuild_index()
        return enc

    def _require_fitted(self) -> None:
        if self._vocab is None:
            raise RuntimeError(f"value encoder {self.name!r} is not fitted")

    def __repr__(self) -> str:
        card = self.cardinality if self._vocab is not None else "unfitted"
        return f"ValueEncoder({self.name!r}, cardinality={card})"


class DecodeMap:
    """The paper's ``f_decode``: per-column label decoders, stored as part
    of the auxiliary structure and counted in the Eq. 1 size objective."""

    def __init__(self, encoders: Dict[str, ValueEncoder]):
        if not encoders:
            raise ValueError("at least one value encoder required")
        self.encoders = dict(encoders)

    @classmethod
    def fit(cls, columns: Dict[str, np.ndarray]) -> "DecodeMap":
        """Fit one encoder per value column."""
        return cls({n: ValueEncoder(n).fit(v) for n, v in columns.items()})

    @property
    def columns(self) -> Tuple[str, ...]:
        """Encoded column names, sorted (task order)."""
        return tuple(sorted(self.encoders))

    def cardinalities(self) -> Dict[str, int]:
        """Softmax width per task."""
        return {n: e.cardinality for n, e in self.encoders.items()}

    def encode(self, columns: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Encode every column to label codes."""
        return {n: self.encoders[n].encode(v) for n, v in columns.items()}

    def decode(self, codes: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Decode label codes back to original values."""
        return {n: self.encoders[n].decode(c) for n, c in codes.items()}

    def extend(self, columns: Dict[str, np.ndarray]) -> int:
        """Register values first seen at modification time; returns the
        number of new vocabulary entries added across columns."""
        return sum(self.encoders[n].extend(v) for n, v in columns.items())

    @property
    def nbytes(self) -> int:
        """Serialized size — ``size(f_decode)`` in Eq. 1."""
        return serialized_size(self.to_state())

    def to_state(self) -> Dict[str, object]:
        """Picklable state."""
        return {n: e.to_state() for n, e in self.encoders.items()}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "DecodeMap":
        """Restore from :meth:`to_state`."""
        return cls({n: ValueEncoder.from_state(s) for n, s in state.items()})

    def __repr__(self) -> str:
        return f"DecodeMap(columns={list(self.columns)})"
