"""The paper's synthetic low/high-correlation datasets (Sec. V-A1).

Four suites, mirroring the paper:

- ``single_column(correlation="low")`` — <key, status> pairs in the image of
  TPC-H ``<OrderKey, OrderStatus>``: the value is independent of the key
  (the paper measures Pearson ~1e-4 there).
- ``single_column(correlation="high")`` — in the image of TPC-DS
  ``CD_Education_Status``: the value follows a periodic pattern along the
  key dimension.
- ``multi_column(...)`` — same two regimes with several value columns
  (lineitem-like for low, customer_demographics-like for high).

Each generator accepts ``start_key`` so the insertion experiments
(Tables III/IV) can extend an existing table with new keys drawn from either
distribution — ``insert_batch`` wraps that.
"""

from __future__ import annotations

import numpy as np

from ._patterns import mixed_radix_column, noisy_choice, structured_column
from .table import ColumnTable

__all__ = ["single_column", "multi_column", "insert_batch", "key_value_pearson"]

_STATUS = np.array(["F", "O", "P"])
_EDUCATION = np.array(
    ["2 yr Degree", "4 yr Degree", "Advanced Degree", "College",
     "Primary", "Secondary", "Unknown"])
_MULTI_HIGH_RADICES = np.array([2, 5, 7, 4], dtype=np.int64)
_MULTI_LOW_CARDS = (3, 2, 7, 50)


def _check_correlation(correlation: str) -> None:
    if correlation not in ("low", "high"):
        raise ValueError("correlation must be 'low' or 'high'")


def _choose_keys(n: int, start_key: int, domain_factor: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Sorted unique keys; ``domain_factor > 1`` leaves gaps for inserts."""
    if domain_factor < 1.0:
        raise ValueError("domain_factor must be >= 1")
    if domain_factor == 1.0:
        return np.arange(start_key, start_key + n, dtype=np.int64)
    domain = int(n * domain_factor)
    picked = rng.choice(domain, size=n, replace=False)
    return np.sort(picked).astype(np.int64) + start_key


def single_column(
    n: int,
    correlation: str = "low",
    seed: int = 0,
    start_key: int = 0,
    domain_factor: float = 1.0,
) -> ColumnTable:
    """Single value column with the requested key-value correlation."""
    _check_correlation(correlation)
    rng = np.random.default_rng((seed, 0 if correlation == "low" else 1))
    keys = _choose_keys(n, start_key, domain_factor, rng)
    if correlation == "low":
        value = _STATUS[noisy_choice(n, 3, rng)]
        name = "synthetic_single_low"
    else:
        codes = structured_column(keys, _EDUCATION.size, period=64, noise=0.01,
                                  rng=rng)
        value = _EDUCATION[codes]
        name = "synthetic_single_high"
    return ColumnTable({"key": keys, "value": value}, key=("key",), name=name)


def multi_column(
    n: int,
    correlation: str = "low",
    seed: int = 0,
    start_key: int = 0,
    domain_factor: float = 1.0,
) -> ColumnTable:
    """Four value columns with the requested key-value correlation."""
    _check_correlation(correlation)
    rng = np.random.default_rng((seed, 2 if correlation == "low" else 3))
    keys = _choose_keys(n, start_key, domain_factor, rng)
    columns = {"key": keys}
    if correlation == "low":
        # lineitem-like: columns independent of the key.
        for i, card in enumerate(_MULTI_LOW_CARDS):
            columns[f"v{i}"] = noisy_choice(n, card, rng)
        name = "synthetic_multi_low"
    else:
        # customer_demographics-like: mixed-radix digits of the key.
        for i in range(_MULTI_HIGH_RADICES.size):
            columns[f"v{i}"] = mixed_radix_column(keys, _MULTI_HIGH_RADICES, i)
        name = "synthetic_multi_high"
    return ColumnTable(columns, key=("key",), name=name)


def insert_batch(
    base: ColumnTable,
    n: int,
    correlation: str,
    seed: int = 1,
    mode: str = "append",
) -> ColumnTable:
    """New rows to insert into a synthetic base table.

    ``correlation`` selects the distribution of the *new* values — matching
    the base table reproduces Table III, crossing distributions reproduces
    Table IV.  ``mode`` picks the keys:

    - ``"append"``: keys continue past the base range (monotone load);
    - ``"gaps"``: unseen keys sampled from holes inside the base key
      domain — the paper's "following the underlying distribution" case,
      where a trained model has a chance to generalize to the inserts.
    """
    if mode not in ("append", "gaps"):
        raise ValueError("mode must be 'append' or 'gaps'")
    existing = np.asarray(base.column(base.key[0]), dtype=np.int64)
    if mode == "append":
        keys = np.arange(n, dtype=np.int64) + int(existing.max()) + 1
    else:
        lo, hi = int(existing.min()), int(existing.max())
        holes = np.setdiff1d(np.arange(lo, hi + 1, dtype=np.int64), existing)
        if holes.size < n:
            extra = np.arange(hi + 1, hi + 1 + (n - holes.size),
                              dtype=np.int64)
            holes = np.concatenate([holes, extra])
        rng = np.random.default_rng((seed, 0x6A95))
        keys = np.sort(rng.choice(holes, size=n, replace=False))
    return _rows_for_keys(base, keys, correlation, seed)


def _rows_for_keys(base: ColumnTable, keys: np.ndarray, correlation: str,
                   seed: int) -> ColumnTable:
    """Synthesize value columns for chosen keys under a distribution."""
    _check_correlation(correlation)
    rng = np.random.default_rng((seed, 0x517))
    n = keys.size
    if set(base.column_names) == {"key", "value"}:
        if correlation == "low":
            value = _STATUS[noisy_choice(n, 3, rng)]
        else:
            codes = structured_column(keys, _EDUCATION.size, period=64,
                                      noise=0.01, rng=rng)
            value = _EDUCATION[codes]
        return ColumnTable({"key": keys, "value": value}, key=("key",),
                           name=base.name)
    columns = {"key": keys}
    if correlation == "low":
        for i, card in enumerate(_MULTI_LOW_CARDS):
            columns[f"v{i}"] = noisy_choice(n, card, rng)
    else:
        for i in range(_MULTI_HIGH_RADICES.size):
            columns[f"v{i}"] = mixed_radix_column(keys, _MULTI_HIGH_RADICES, i)
    if set(columns) != set(base.column_names):
        raise ValueError("base table is not a synthetic single/multi table")
    return ColumnTable(columns, key=("key",), name=base.name)


def key_value_pearson(table: ColumnTable) -> float:
    """Mean |Pearson correlation| between the flattened key and each value
    column (categorical values are rank-coded) — the statistic the paper
    quotes to characterize its synthetic suites."""
    key = table.column(table.key[0]).astype(np.float64)
    corrs = []
    for name in table.value_columns:
        col = table.column(name)
        if col.dtype.kind in "US" or col.dtype == object:
            _, codes = np.unique(col, return_inverse=True)
            col = codes
        col = col.astype(np.float64)
        if col.std() == 0 or key.std() == 0:
            corrs.append(0.0)
            continue
        corrs.append(abs(float(np.corrcoef(key, col)[0, 1])))
    return float(np.mean(corrs)) if corrs else 0.0
