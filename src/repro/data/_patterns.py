"""Internal helpers for generating key-correlated / noisy columns.

The paper's datasets differ mainly in *how much of a value column is a
function of the key*: TPC-DS ``customer_demographics`` is a pure cross
product (fully determined), TPC-H ``lineitem`` columns are nearly
independent of the key, and the synthetic suites sit in between.  These
helpers express that spectrum as a periodic key-derived signal mixed with
uniform noise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["structured_column", "noisy_choice", "mixed_radix_column"]


def structured_column(
    keys: np.ndarray,
    cardinality: int,
    period: int,
    noise: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A value column that is a periodic function of the key plus noise.

    ``value = (key // period) % cardinality`` for a ``1 - noise`` fraction
    of rows; the rest are uniform random.  ``noise=0`` is fully learnable,
    ``noise=1`` is pure noise.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError("noise must be in [0, 1]")
    if period <= 0 or cardinality <= 0:
        raise ValueError("period and cardinality must be positive")
    keys = np.asarray(keys, dtype=np.int64)
    values = (keys // period) % cardinality
    if noise > 0.0:
        flip = rng.random(keys.size) < noise
        values = np.where(flip, rng.integers(0, cardinality, size=keys.size), values)
    return values.astype(np.int64)


def noisy_choice(
    n: int, cardinality: int, rng: np.random.Generator, skew: float = 0.0
) -> np.ndarray:
    """A key-independent column: uniform (or Zipf-ish skewed) random labels."""
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")
    if skew <= 0.0:
        return rng.integers(0, cardinality, size=n).astype(np.int64)
    weights = 1.0 / np.arange(1, cardinality + 1) ** skew
    weights /= weights.sum()
    return rng.choice(cardinality, size=n, p=weights).astype(np.int64)


def mixed_radix_column(
    keys: np.ndarray, radices: np.ndarray, position: int
) -> np.ndarray:
    """Digit ``position`` of ``keys`` written in mixed radix ``radices``.

    TPC-DS ``customer_demographics`` is exactly this shape: the surrogate
    key enumerates the cross product of the dimension columns, so each
    column is a mixed-radix digit of the key (fully learnable).
    """
    keys = np.asarray(keys, dtype=np.int64)
    radices = np.asarray(radices, dtype=np.int64)
    stride = int(np.prod(radices[position + 1:])) if position + 1 < radices.size else 1
    return ((keys // stride) % radices[position]).astype(np.int64)
