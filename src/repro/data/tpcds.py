"""Deterministic TPC-DS-shaped dataset generator.

Covers the three TPC-DS tables in the paper's evaluation (Table II):

- ``customer_demographics`` — in real TPC-DS this table *is* the cross
  product of its dimension columns, so every column is a mixed-radix digit
  of the surrogate key.  This is the paper's flagship high-correlation case
  (it compresses to 0.6% of its size); the generator reproduces the cross
  product exactly.
- ``catalog_sales`` / ``catalog_returns`` — fact tables with higher-
  cardinality categorical columns than TPC-H (the reason the paper finds
  TPC-DS "generally harder to compress", Sec. V-B1), generated with mild
  key structure plus noise.

Row counts are scaled to 1/100th of the official counts, like
:mod:`repro.data.tpch`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ._patterns import mixed_radix_column, noisy_choice, structured_column
from .schema import ColumnSpec, ColumnType, Schema
from .table import ColumnTable

__all__ = ["ROWS_PER_SF", "TPCDS_TABLES", "CD_DIMENSIONS", "generate", "schema_for"]

#: Rows per unit scale factor (about 1/100th of official TPC-DS SF=1).
ROWS_PER_SF: Dict[str, int] = {
    "customer_demographics": 19_208,
    "catalog_sales": 14_400,
    "catalog_returns": 1_440,
}

TPCDS_TABLES: Tuple[str, ...] = tuple(sorted(ROWS_PER_SF))

#: Dimension vocabularies of customer_demographics (name, values).  The
#: cross product of the sizes (2*5*7*20*4*7) spans the scaled table.
CD_DIMENSIONS: Tuple[Tuple[str, np.ndarray], ...] = (
    ("cd_gender", np.array(["F", "M"])),
    ("cd_marital_status", np.array(["D", "M", "S", "U", "W"])),
    ("cd_education_status", np.array(
        ["2 yr Degree", "4 yr Degree", "Advanced Degree", "College",
         "Primary", "Secondary", "Unknown"])),
    ("cd_purchase_estimate", np.arange(500, 10_001, 500, dtype=np.int64)),
    ("cd_credit_rating", np.array(["Good", "High Risk", "Low Risk", "Unknown"])),
    ("cd_dep_count", np.arange(0, 7, dtype=np.int64)),
)

_CALL_CENTERS = np.array([f"cc_{i:02d}" for i in range(6)])
_SHIP_MODES = np.array(
    [f"{speed} {carrier}" for speed in ("EXPRESS", "LIBRARY", "NEXT DAY",
                                        "OVERNIGHT", "REGULAR")
     for carrier in ("AIRBORNE", "DHL", "FEDEX", "UPS")]
)
_REASONS = np.array([f"reason_{i:02d}" for i in range(35)])


def _rows(table: str, scale: float) -> int:
    return max(int(round(ROWS_PER_SF[table] * scale)), 10)


def generate(table: str, scale: float = 1.0, seed: int = 0) -> ColumnTable:
    """Generate one TPC-DS table at the given (scaled-down) scale factor."""
    if table not in ROWS_PER_SF:
        raise KeyError(f"unknown TPC-DS table {table!r}; have {TPCDS_TABLES}")
    rng = np.random.default_rng((seed, hash(table) & 0xFFFF))
    n = _rows(table, scale)
    builder = {
        "customer_demographics": _customer_demographics,
        "catalog_sales": _catalog_sales,
        "catalog_returns": _catalog_returns,
    }[table]
    return builder(n, rng)


def _customer_demographics(n: int, rng: np.random.Generator) -> ColumnTable:
    keys = np.arange(1, n + 1, dtype=np.int64)
    radices = np.array([v.size for _, v in CD_DIMENSIONS], dtype=np.int64)
    columns: Dict[str, np.ndarray] = {"cd_demo_sk": keys}
    for pos, (name, vocab) in enumerate(CD_DIMENSIONS):
        digits = mixed_radix_column(keys - 1, radices, pos)
        columns[name] = vocab[digits]
    return ColumnTable(columns, key=("cd_demo_sk",), name="customer_demographics")


def _catalog_sales(n: int, rng: np.random.Generator) -> ColumnTable:
    keys = np.arange(1, n + 1, dtype=np.int64)
    ship_mode = structured_column(keys, _SHIP_MODES.size, period=6, noise=0.2,
                                  rng=rng)
    call_center = structured_column(keys, _CALL_CENTERS.size, period=48,
                                    noise=0.15, rng=rng)
    return ColumnTable(
        {
            "cs_order_sk": keys,
            "cs_ship_mode": _SHIP_MODES[ship_mode],
            "cs_call_center": _CALL_CENTERS[call_center],
            "cs_warehouse_sk": noisy_choice(n, 5, rng) + 1,
            "cs_quantity": noisy_choice(n, 100, rng) + 1,
            "cs_promo_sk": structured_column(keys, 10, period=96, noise=0.25,
                                             rng=rng) + 1,
        },
        key=("cs_order_sk",),
        name="catalog_sales",
    )


def _catalog_returns(n: int, rng: np.random.Generator) -> ColumnTable:
    keys = np.arange(1, n + 1, dtype=np.int64)
    reason = structured_column(keys, _REASONS.size, period=4, noise=0.25, rng=rng)
    return ColumnTable(
        {
            "cr_order_sk": keys,
            "cr_reason": _REASONS[reason],
            "cr_ship_mode": _SHIP_MODES[noisy_choice(n, _SHIP_MODES.size, rng)],
            "cr_return_quantity": noisy_choice(n, 100, rng) + 1,
        },
        key=("cr_order_sk",),
        name="catalog_returns",
    )


def schema_for(table: str) -> Schema:
    """Schema metadata for a TPC-DS table."""
    integer, categorical = ColumnType.INTEGER, ColumnType.CATEGORICAL
    schemas = {
        "customer_demographics": Schema(
            "customer_demographics",
            (ColumnSpec("cd_demo_sk", integer),)
            + tuple(
                ColumnSpec(name, categorical if vocab.dtype.kind in "US" else integer,
                           vocab.size)
                for name, vocab in CD_DIMENSIONS
            ),
            key=("cd_demo_sk",),
        ),
        "catalog_sales": Schema(
            "catalog_sales",
            (
                ColumnSpec("cs_order_sk", integer),
                ColumnSpec("cs_ship_mode", categorical, 20),
                ColumnSpec("cs_call_center", categorical, 6),
                ColumnSpec("cs_warehouse_sk", integer, 5),
                ColumnSpec("cs_quantity", integer, 100),
                ColumnSpec("cs_promo_sk", integer, 10),
            ),
            key=("cs_order_sk",),
        ),
        "catalog_returns": Schema(
            "catalog_returns",
            (
                ColumnSpec("cr_order_sk", integer),
                ColumnSpec("cr_reason", categorical, 35),
                ColumnSpec("cr_ship_mode", categorical, 20),
                ColumnSpec("cr_return_quantity", integer, 100),
            ),
            key=("cr_order_sk",),
        ),
    }
    if table not in schemas:
        raise KeyError(f"unknown TPC-DS table {table!r}")
    return schemas[table]
