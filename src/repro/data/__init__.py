"""Data substrate: tables, encoders, and the paper's dataset generators."""

from . import crop, synthetic, tpcds, tpch
from .encoding import CompositeKeyCodec, DecodeMap, KeyEncoder, ValueEncoder
from .schema import ColumnSpec, ColumnType, Schema
from .table import ColumnTable

__all__ = [
    "ColumnTable",
    "ColumnSpec",
    "ColumnType",
    "Schema",
    "CompositeKeyCodec",
    "KeyEncoder",
    "ValueEncoder",
    "DecodeMap",
    "tpch",
    "tpcds",
    "synthetic",
    "crop",
]
