"""Relational schema descriptions for the generated datasets.

The paper's problem statement (Sec. III) concerns relations
``R(K1..Kl, V1..Vm)`` with discrete key and value attributes (float columns
are removed from the benchmarks).  :class:`Schema` captures that shape:
which columns form the key and the type/cardinality of each value column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Tuple

__all__ = ["ColumnType", "ColumnSpec", "Schema"]


class ColumnType(Enum):
    """Discrete column types supported by the reproduction."""

    INTEGER = "integer"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class ColumnSpec:
    """Description of one column."""

    name: str
    ctype: ColumnType
    #: Distinct-value count (0 = unknown / unbounded, e.g. surrogate keys).
    cardinality: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("column name must be non-empty")
        if self.cardinality < 0:
            raise ValueError("cardinality must be non-negative")


@dataclass(frozen=True)
class Schema:
    """A relation schema: named columns plus the key-column subset."""

    name: str
    columns: Tuple[ColumnSpec, ...]
    key: Tuple[str, ...]

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        missing = [k for k in self.key if k not in names]
        if missing:
            raise ValueError(f"key columns not in schema: {missing}")
        if not self.key:
            raise ValueError("schema requires at least one key column")

    @property
    def column_names(self) -> Tuple[str, ...]:
        """All column names in declaration order."""
        return tuple(c.name for c in self.columns)

    @property
    def value_columns(self) -> Tuple[str, ...]:
        """Non-key column names in declaration order."""
        return tuple(n for n in self.column_names if n not in self.key)

    def spec(self, name: str) -> ColumnSpec:
        """Look up a column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"no column named {name!r} in schema {self.name!r}")

    def by_name(self) -> Dict[str, ColumnSpec]:
        """Dict view of the columns."""
        return {c.name: c for c in self.columns}
