"""Deterministic TPC-H-shaped dataset generator.

The official ``dbgen`` tool is unavailable offline, so this module generates
tables with the same names, key structure, categorical vocabularies, and
key-value correlation character as the TPC-H tables the paper evaluates
(float attributes removed, per Sec. V-A1).  Row counts are scaled to
laptop size: one unit of scale factor corresponds to 1/100th of the official
row counts (see :data:`ROWS_PER_SF`), keeping the relative table sizes —
and therefore the paper's per-table storyline — intact.

Correlation calibration: TPC-H value columns are mostly independent of the
primary key (the paper measures a Pearson correlation of about 1e-4 for
``OrderKey -> OrderStatus``), with a few weakly date/key-structured columns.
Each generated column mixes a periodic key-derived signal with uniform noise
to land in that regime.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ._patterns import noisy_choice, structured_column
from .schema import ColumnSpec, ColumnType, Schema
from .table import ColumnTable

__all__ = ["ROWS_PER_SF", "TPCH_TABLES", "generate", "schema_for"]

#: Rows per unit scale factor (1/100th of official TPC-H).
ROWS_PER_SF: Dict[str, int] = {
    "supplier": 100,
    "part": 2_000,
    "customer": 1_500,
    "orders": 15_000,
    "lineitem": 60_000,
}

TPCH_TABLES: Tuple[str, ...] = tuple(sorted(ROWS_PER_SF))

_ORDER_STATUS = np.array(["F", "O", "P"])
_PRIORITY = np.array(["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"])
_SHIPMODE = np.array(["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"])
_SHIPINSTRUCT = np.array(
    ["COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"]
)
_RETURNFLAG = np.array(["A", "N", "R"])
_LINESTATUS = np.array(["F", "O"])
_SEGMENTS = np.array(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"])
_CONTAINERS = np.array(
    [f"{size} {kind}" for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
     for kind in ("BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG")]
)
_MFGRS = np.array([f"Manufacturer#{i}" for i in range(1, 6)])


def _rows(table: str, scale: float) -> int:
    count = int(round(ROWS_PER_SF[table] * scale))
    return max(count, 10)


def generate(table: str, scale: float = 1.0, seed: int = 0) -> ColumnTable:
    """Generate one TPC-H table at the given (scaled-down) scale factor.

    Parameters
    ----------
    table:
        One of :data:`TPCH_TABLES`.
    scale:
        Paper "SF" equivalent; rows = ``ROWS_PER_SF[table] * scale``.
    seed:
        Generation seed; same (table, scale, seed) is bit-identical.
    """
    if table not in ROWS_PER_SF:
        raise KeyError(f"unknown TPC-H table {table!r}; have {TPCH_TABLES}")
    rng = np.random.default_rng((seed, hash(table) & 0xFFFF))
    n = _rows(table, scale)
    builder = {
        "supplier": _supplier,
        "part": _part,
        "customer": _customer,
        "orders": _orders,
        "lineitem": _lineitem,
    }[table]
    return builder(n, rng, scale)


def _supplier(n: int, rng: np.random.Generator, scale: float) -> ColumnTable:
    keys = np.arange(1, n + 1, dtype=np.int64)
    nation = structured_column(keys, 25, period=3, noise=0.2, rng=rng)
    region = nation // 5  # nations group into 5 regions deterministically
    rating = structured_column(keys, 5, period=2, noise=0.15, rng=rng) + 1
    return ColumnTable(
        {
            "s_suppkey": keys,
            "s_nationkey": nation,
            "s_region": region,
            "s_rating": rating,
        },
        key=("s_suppkey",),
        name="supplier",
    )


def _part(n: int, rng: np.random.Generator, scale: float) -> ColumnTable:
    keys = np.arange(1, n + 1, dtype=np.int64)
    mfgr_code = structured_column(keys, 5, period=8, noise=0.1, rng=rng)
    # Brand nests in manufacturer; its low digit follows the key cycle too.
    brand = mfgr_code * 5 + structured_column(keys, 5, period=3, noise=0.15,
                                              rng=rng)
    size = structured_column(keys, 50, period=7, noise=0.15, rng=rng) + 1
    container = structured_column(keys, len(_CONTAINERS), period=16, noise=0.15,
                                  rng=rng)
    return ColumnTable(
        {
            "p_partkey": keys,
            "p_mfgr": _MFGRS[mfgr_code],
            "p_brand": brand,
            "p_size": size,
            "p_container": _CONTAINERS[container],
        },
        key=("p_partkey",),
        name="part",
    )


def _customer(n: int, rng: np.random.Generator, scale: float) -> ColumnTable:
    keys = np.arange(1, n + 1, dtype=np.int64)
    nation = structured_column(keys, 25, period=9, noise=0.2, rng=rng)
    segment = structured_column(keys, 5, period=12, noise=0.15, rng=rng)
    balance_bucket = structured_column(keys, 11, period=5, noise=0.25, rng=rng)
    return ColumnTable(
        {
            "c_custkey": keys,
            "c_nationkey": nation,
            "c_mktsegment": _SEGMENTS[segment],
            "c_acctbal_bucket": balance_bucket,
        },
        key=("c_custkey",),
        name="customer",
    )


def _orders(n: int, rng: np.random.Generator, scale: float) -> ColumnTable:
    # Real TPC-H order keys are sparse in their domain (only 1/4 present);
    # keep that so the existence bit vector has real work to do.
    keys = np.arange(0, 4 * n, 4, dtype=np.int64) + 1
    n_customers = _rows("customer", scale)
    status = structured_column(keys, 3, period=max(4 * n // 3, 1), noise=0.08,
                               rng=rng)
    year = structured_column(keys, 7, period=max(4 * n // 7, 1), noise=0.05,
                             rng=rng)
    # Orders arrive in key order, so customers cluster along the key
    # dimension (sessions) with a noisy tail — learnable but not trivial.
    custkey = structured_column(keys, n_customers, period=3, noise=0.2,
                                rng=rng) + 1
    return ColumnTable(
        {
            "o_orderkey": keys,
            "o_custkey": custkey,
            "o_orderstatus": _ORDER_STATUS[status],
            "o_orderpriority": _PRIORITY[structured_column(
                keys, 5, period=11, noise=0.15, rng=rng)],
            "o_year": 1992 + year,
        },
        key=("o_orderkey",),
        name="orders",
    )


def _lineitem(n: int, rng: np.random.Generator, scale: float) -> ColumnTable:
    # Composite key (l_orderkey, l_linenumber): 1..7 lines per order.
    n_orders = _rows("orders", scale)
    order_keys_domain = np.arange(0, 4 * n_orders, 4, dtype=np.int64) + 1
    lines_per_order = rng.integers(1, 8, size=n_orders)
    order_idx = np.repeat(np.arange(n_orders), lines_per_order)[:n]
    if order_idx.size < n:
        extra = rng.integers(0, n_orders, size=n - order_idx.size)
        order_idx = np.concatenate([order_idx, extra])
    linenumber = np.concatenate(
        [np.arange(1, c + 1) for c in lines_per_order]
    )[:n]
    if linenumber.size < n:
        linenumber = np.concatenate(
            [linenumber, rng.integers(1, 8, size=n - linenumber.size)]
        )
    orderkey = order_keys_domain[order_idx]
    # Deduplicate composite keys introduced by the tail fill.
    flat = orderkey * 8 + linenumber
    _, unique_idx = np.unique(flat, return_index=True)
    unique_idx.sort()
    orderkey = orderkey[unique_idx]
    linenumber = linenumber[unique_idx]
    m = orderkey.size

    returnflag = structured_column(orderkey, 3, period=max(4 * n_orders // 3, 1),
                                   noise=0.1, rng=rng)
    linestatus = structured_column(orderkey, 2, period=max(4 * n_orders // 2, 1),
                                   noise=0.05, rng=rng)
    # Ship mode/instructions follow warehouse rotations along the key with
    # a noisy tail; quantity is the least predictable column.
    shipmode = structured_column(orderkey * 8 + linenumber, 7, period=5,
                                 noise=0.15, rng=rng)
    shipinstruct = structured_column(orderkey * 8 + linenumber, 4, period=9,
                                     noise=0.12, rng=rng)
    quantity = structured_column(orderkey * 8 + linenumber, 50, period=6,
                                 noise=0.3, rng=rng)
    return ColumnTable(
        {
            "l_orderkey": orderkey,
            "l_linenumber": linenumber.astype(np.int64),
            "l_returnflag": _RETURNFLAG[returnflag],
            "l_linestatus": _LINESTATUS[linestatus],
            "l_shipmode": _SHIPMODE[shipmode],
            "l_shipinstruct": _SHIPINSTRUCT[shipinstruct],
            "l_quantity": quantity + 1,
        },
        key=("l_orderkey", "l_linenumber"),
        name="lineitem",
    )


def schema_for(table: str) -> Schema:
    """Schema metadata for a TPC-H table."""
    integer, categorical = ColumnType.INTEGER, ColumnType.CATEGORICAL
    schemas = {
        "supplier": Schema(
            "supplier",
            (
                ColumnSpec("s_suppkey", integer),
                ColumnSpec("s_nationkey", integer, 25),
                ColumnSpec("s_region", integer, 5),
                ColumnSpec("s_rating", integer, 5),
            ),
            key=("s_suppkey",),
        ),
        "part": Schema(
            "part",
            (
                ColumnSpec("p_partkey", integer),
                ColumnSpec("p_mfgr", categorical, 5),
                ColumnSpec("p_brand", integer, 25),
                ColumnSpec("p_size", integer, 50),
                ColumnSpec("p_container", categorical, 40),
            ),
            key=("p_partkey",),
        ),
        "customer": Schema(
            "customer",
            (
                ColumnSpec("c_custkey", integer),
                ColumnSpec("c_nationkey", integer, 25),
                ColumnSpec("c_mktsegment", categorical, 5),
                ColumnSpec("c_acctbal_bucket", integer, 11),
            ),
            key=("c_custkey",),
        ),
        "orders": Schema(
            "orders",
            (
                ColumnSpec("o_orderkey", integer),
                ColumnSpec("o_custkey", integer),
                ColumnSpec("o_orderstatus", categorical, 3),
                ColumnSpec("o_orderpriority", categorical, 5),
                ColumnSpec("o_year", integer, 7),
            ),
            key=("o_orderkey",),
        ),
        "lineitem": Schema(
            "lineitem",
            (
                ColumnSpec("l_orderkey", integer),
                ColumnSpec("l_linenumber", integer, 7),
                ColumnSpec("l_returnflag", categorical, 3),
                ColumnSpec("l_linestatus", categorical, 2),
                ColumnSpec("l_shipmode", categorical, 7),
                ColumnSpec("l_shipinstruct", categorical, 4),
                ColumnSpec("l_quantity", integer, 50),
            ),
            key=("l_orderkey", "l_linenumber"),
        ),
    }
    if table not in schemas:
        raise KeyError(f"unknown TPC-H table {table!r}")
    return schemas[table]
