"""Synthetic CroplandCROS-style crop raster (paper Sec. V-A1).

The paper samples a region of the USDA CroplandCROS layer: an image where
each pixel is a crop type, flattened to a three-column table
``(latitude, longitude, crop_type)``.  That data requires an online
download, so this module synthesizes a raster with the property the
experiment actually exercises: *strong spatial autocorrelation* (fields are
contiguous patches, so crop type is highly predictable from position) over
a large composite key domain, with a skewed crop distribution like the real
corn/soy-dominated layer.

The raster is a patchwork of rectangular field cells, each assigned a crop
class drawn from a skewed area distribution — the blocky patch structure of
real cropland imagery.
"""

from __future__ import annotations

import numpy as np

from .table import ColumnTable

__all__ = ["generate", "CROP_TYPES"]

#: Crop classes with a skewed area distribution (corn/soy dominate, like CDL).
CROP_TYPES = np.array(
    ["corn", "soybeans", "winter_wheat", "alfalfa", "cotton",
     "spring_wheat", "sorghum", "barley", "rice", "fallow"])

#: Per-class area shares (corn and soybeans dominate, like the real CDL).
_AREA_SHARES = np.array(
    [0.30, 0.25, 0.13, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01])


def _patchwork(height: int, width: int, cell: int,
               rng: np.random.Generator) -> np.ndarray:
    """Crop-class raster made of contiguous rectangular field patches.

    One class is drawn per coarse cell from the skewed area distribution,
    then upsampled to pixel resolution — the blocky patch structure of
    real cropland imagery.
    """
    rows = (height + cell - 1) // cell
    cols = (width + cell - 1) // cell
    coarse = rng.choice(_AREA_SHARES.size, size=(rows, cols), p=_AREA_SHARES)
    field = np.repeat(np.repeat(coarse, cell, axis=0), cell, axis=1)
    return field[:height, :width]


def generate(
    height: int = 200,
    width: int = 200,
    seed: int = 0,
    smoothness: int = 10,
) -> ColumnTable:
    """Generate a crop raster flattened to (lat, lon, crop_type) rows.

    Parameters
    ----------
    height, width:
        Raster dimensions; the table has ``height * width`` rows with the
        composite key ``(lat, lon)``.
    seed:
        Generation seed.
    smoothness:
        Field-patch edge length in pixels; larger values give bigger
        contiguous fields (more spatial correlation, more compressible).
    """
    if height <= 0 or width <= 0:
        raise ValueError("raster dimensions must be positive")
    rng = np.random.default_rng((seed, 0xC50))
    classes = _patchwork(height, width, max(1, smoothness), rng).reshape(-1)
    lat, lon = np.divmod(np.arange(height * width, dtype=np.int64), width)
    return ColumnTable(
        {
            "lat": lat,
            "lon": lon,
            "crop_type": CROP_TYPES[classes],
        },
        key=("lat", "lon"),
        name="crop",
    )
