"""Column-oriented in-memory tables.

The generators produce :class:`ColumnTable` objects: a dict of parallel numpy
arrays plus the names of the key columns.  ``uncompressed_bytes`` serves as
the ``size(D)`` denominator of the paper's Eq. 1 compression objective (the
serialized array representation, matching the paper's AB baseline).

Tables round-trip through CSV (:meth:`ColumnTable.from_csv` /
:meth:`ColumnTable.to_csv`) so users can bring their own data without any
extra dependency.
"""

from __future__ import annotations

import csv
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..storage.serializer import serialized_size

__all__ = ["ColumnTable"]


class ColumnTable:
    """An immutable-ish columnar table with designated key columns.

    Parameters
    ----------
    columns:
        Mapping of column name to 1-D numpy array; all must share a length.
    key:
        Names of the key columns (paper Sec. III: a key may be any attribute
        combination, not necessarily a unique identifier — but the
        DeepMapping build requires the flattened key to be unique, which
        generators here guarantee).
    name:
        Table name used in reports.
    """

    def __init__(
        self,
        columns: Dict[str, np.ndarray],
        key: Sequence[str],
        name: str = "table",
    ):
        if not columns:
            raise ValueError("a table requires at least one column")
        lengths = {name_: len(arr) for name_, arr in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        key = tuple(key)
        if not key:
            raise ValueError("at least one key column is required")
        for k in key:
            if k not in columns:
                raise KeyError(f"key column {k!r} not present")
        self._columns = {name_: np.asarray(arr) for name_, arr in columns.items()}
        self.key = key
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return len(next(iter(self._columns.values())))

    @property
    def column_names(self) -> Tuple[str, ...]:
        """All column names in insertion order."""
        return tuple(self._columns)

    @property
    def value_columns(self) -> Tuple[str, ...]:
        """Non-key column names in insertion order."""
        return tuple(n for n in self._columns if n not in self.key)

    def __len__(self) -> int:
        return self.n_rows

    def column(self, name: str) -> np.ndarray:
        """The array backing column ``name``."""
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def columns_dict(self) -> Dict[str, np.ndarray]:
        """Shallow copy of the column mapping."""
        return dict(self._columns)

    def key_columns_dict(self) -> Dict[str, np.ndarray]:
        """Just the key columns."""
        return {k: self._columns[k] for k in self.key}

    def value_columns_dict(self) -> Dict[str, np.ndarray]:
        """Just the value columns."""
        return {v: self._columns[v] for v in self.value_columns}

    # ------------------------------------------------------------------
    def take(self, indices) -> "ColumnTable":
        """Row subset (by integer indices), preserving key designation."""
        idx = np.asarray(indices)
        return ColumnTable(
            {n: arr[idx] for n, arr in self._columns.items()},
            key=self.key,
            name=self.name,
        )

    def head(self, n: int) -> "ColumnTable":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self.n_rows)))

    def concat(self, other: "ColumnTable") -> "ColumnTable":
        """Row-wise concatenation; schemas must match."""
        if set(other.column_names) != set(self.column_names):
            raise ValueError("column sets differ")
        merged = {
            n: np.concatenate([arr, other._columns[n]])
            for n, arr in self._columns.items()
        }
        return ColumnTable(merged, key=self.key, name=self.name)

    def sample_rows(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> "ColumnTable":
        """Uniform row sample."""
        idx = rng.choice(self.n_rows, size=min(n, self.n_rows) if not replace else n,
                         replace=replace)
        return self.take(idx)

    def row(self, i: int) -> Dict[str, object]:
        """One row as a dict (scalar values)."""
        return {n: arr[i] for n, arr in self._columns.items()}

    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # CSV interchange
    # ------------------------------------------------------------------
    @classmethod
    def from_csv(
        cls,
        path: str,
        key: Sequence[str],
        name: str = "table",
    ) -> "ColumnTable":
        """Load a headered CSV; columns of all-integer text become int64,
        everything else stays as strings."""
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise ValueError(f"{path} is empty") from None
            raw: Dict[str, list] = {column: [] for column in header}
            for row in reader:
                if len(row) != len(header):
                    raise ValueError(
                        f"row with {len(row)} fields; expected {len(header)}"
                    )
                for column, value in zip(header, row):
                    raw[column].append(value)
        columns: Dict[str, np.ndarray] = {}
        for column, values in raw.items():
            try:
                columns[column] = np.array([int(v) for v in values],
                                           dtype=np.int64)
            except ValueError:
                columns[column] = np.array(values)
        return cls(columns, key=key, name=name)

    def to_csv(self, path: str) -> None:
        """Write a headered CSV of all columns."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.column_names)
            for i in range(self.n_rows):
                writer.writerow([self._columns[c][i]
                                 for c in self.column_names])

    # ------------------------------------------------------------------
    def uncompressed_bytes(self) -> int:
        """Serialized size of the raw arrays — Eq. 1's ``size(D)``."""
        return serialized_size(self._columns)

    def equals(self, other: "ColumnTable") -> bool:
        """Exact equality of schema and data."""
        if set(self.column_names) != set(other.column_names):
            return False
        if self.key != other.key or self.n_rows != other.n_rows:
            return False
        return all(
            np.array_equal(self._columns[n], other._columns[n])
            for n in self.column_names
        )

    def __repr__(self) -> str:
        return (
            f"ColumnTable(name={self.name!r}, rows={self.n_rows}, "
            f"key={self.key}, columns={list(self.column_names)})"
        )
