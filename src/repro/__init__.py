"""DeepMapping reproduction: learned data mapping for lossless compression
and efficient lookup (Zhou, Candan, Zou — ICDE 2024).

Public API highlights
---------------------
- :class:`repro.DeepMapping` / :class:`repro.DeepMappingConfig` — the
  hybrid learned structure (model + auxiliary table + existence bit vector
  + decode map) and its build knobs.
- :class:`repro.ShardedDeepMapping` / :class:`repro.ShardingConfig` — the
  horizontally sharded store: N independent DeepMapping shards behind one
  facade, with vectorized routing and parallel batched lookups.
- :class:`repro.LifecycleConfig` / :mod:`repro.lifecycle` — write-side
  maintenance: pluggable retrain policies, range shard split/merge
  rebalancing, per-shard MHAS model sizing.
- :mod:`repro.core.mhas` — multi-task hybrid architecture search.
- :mod:`repro.baselines` — AB/ABC-*, HB/HBC-*, DeepSqueeze comparators.
- :mod:`repro.data` — TPC-H / TPC-DS / synthetic / crop dataset generators.
- :mod:`repro.bench` — workload generation and latency/size measurement.
- :mod:`repro.nn` / :mod:`repro.storage` — the numpy neural-network and
  storage substrates everything is built on.

Quickstart
----------
>>> from repro import DeepMapping, DeepMappingConfig
>>> from repro.data import tpch
>>> orders = tpch.generate("orders", scale=0.1)
>>> dm = DeepMapping.fit(orders, DeepMappingConfig(epochs=40))
>>> dm.lookup_one(o_orderkey=1)["o_orderstatus"]   # doctest: +SKIP
'F'
"""

__version__ = "1.0.0"

from . import baselines, bench, core, data, lifecycle, nn, shard, storage
from .core import (
    DeepMapping,
    DeepMappingConfig,
    LookupResult,
    MultiKeyDeepMapping,
    MultiRelationDeepMapping,
    SizeReport,
    build_range_view,
    lookup_range,
)
from .data import ColumnTable
from .lifecycle import LifecycleConfig, MaintenanceEngine
from .shard import ShardedDeepMapping, ShardingConfig

__all__ = [
    "__version__",
    "DeepMapping",
    "DeepMappingConfig",
    "LookupResult",
    "SizeReport",
    "MultiKeyDeepMapping",
    "MultiRelationDeepMapping",
    "ShardedDeepMapping",
    "ShardingConfig",
    "LifecycleConfig",
    "MaintenanceEngine",
    "lookup_range",
    "build_range_view",
    "ColumnTable",
    "baselines",
    "bench",
    "core",
    "data",
    "lifecycle",
    "nn",
    "shard",
    "storage",
]
