"""DeepMapping reproduction: learned data mapping for lossless compression
and efficient lookup (Zhou, Candan, Zou — ICDE 2024).

Public API highlights
---------------------
- :func:`repro.open` / :func:`repro.build` — THE way in: build a store
  over a table and reopen it later by URL (``file://``, ``mem://``,
  ``zip://``) or bare path, monolithic vs sharded auto-detected.
- :class:`repro.store.DataStore` — the protocol every store satisfies
  (lookup / lookup_async / insert / delete / update / rebuild / save /
  size_report / close, context-managed).
- :class:`repro.DeepMapping` / :class:`repro.DeepMappingConfig` — the
  hybrid learned structure (model + auxiliary table + existence bit vector
  + decode map) and its build knobs.
- :class:`repro.ShardedDeepMapping` / :class:`repro.ShardingConfig` — the
  horizontally sharded store: N independent DeepMapping shards behind one
  facade, fan-out on a pluggable executor strategy.
- :class:`repro.LifecycleConfig` / :mod:`repro.lifecycle` — write-side
  maintenance: pluggable retrain policies, range shard split/merge
  rebalancing, per-shard MHAS model sizing.
- :func:`repro.serving` / :mod:`repro.serve` — the serving tier: a
  coalescing lookup server that merges many small concurrent requests
  into fused batches over a shared read-only store (in-process client,
  TCP/JSON-lines transport, ``python -m repro serve`` CLI).
- :mod:`repro.resilience` — the failure-handling layer every tier
  shares: :class:`repro.Deadline` budgets, :func:`repro.retry` with
  jittered backoff, per-backend :class:`repro.CircuitBreaker`\\ s,
  :class:`repro.PartialResult` shard fault isolation, and the typed
  error taxonomy (:class:`repro.StoreCorruptedError`,
  :class:`repro.StoreNotFoundError`, :class:`repro.DeadlineExceeded`).
  :mod:`repro.testing` holds the matching chaos-injection doubles.
- :mod:`repro.storage` — storage substrate, including the pluggable
  :class:`~repro.storage.StorageBackend` persistence layer.
- :mod:`repro.core.mhas` — multi-task hybrid architecture search.
- :mod:`repro.baselines` — AB/ABC-*, HB/HBC-*, DeepSqueeze comparators.
- :mod:`repro.data` — TPC-H / TPC-DS / synthetic / crop dataset generators.
- :mod:`repro.bench` — workload generation and latency/size measurement.

Quickstart
----------
Build a store over any :class:`~repro.data.ColumnTable`, persist it to a
URL, and reopen it — losslessness holds whatever the model learned:

>>> import numpy as np
>>> import repro
>>> table = repro.ColumnTable(
...     {"sku": np.arange(64, dtype=np.int64),
...      "price": (np.arange(64, dtype=np.int64) * 7) % 13},
...     key=("sku",))
>>> store = repro.build(table, repro.DeepMappingConfig(epochs=2, seed=0),
...                     url="mem://quickstart")
>>> int(store.lookup_one(sku=3)["price"])
8
>>> store.lookup_one(sku=999) is None
True
>>> with repro.open("mem://quickstart") as clone:
...     int(clone.lookup_one(sku=3)["price"])
8
"""

__version__ = "1.1.0"

from . import (baselines, bench, core, data, lifecycle, nn, resilience,
               serve, shard, storage, store, testing)
from .core import (
    DeepMapping,
    DeepMappingConfig,
    LookupResult,
    MultiKeyDeepMapping,
    MultiRelationDeepMapping,
    SizeReport,
    build_range_view,
    lookup_range,
)
from .data import ColumnTable
from .lifecycle import LifecycleConfig, MaintenanceEngine
from .resilience import (CircuitBreaker, Deadline, DeadlineExceeded,
                         PartialResult, RetryPolicy, StoreCorruptedError,
                         StoreNotFoundError, retry)
from .shard import ShardedDeepMapping, ShardingConfig
from .store import DataStore, build_store, open_store, serving
from .store import build_store as build
from .store import open_store as open

__all__ = [
    "__version__",
    "open",
    "build",
    "open_store",
    "build_store",
    "serving",
    "DataStore",
    "DeepMapping",
    "DeepMappingConfig",
    "LookupResult",
    "SizeReport",
    "MultiKeyDeepMapping",
    "MultiRelationDeepMapping",
    "ShardedDeepMapping",
    "ShardingConfig",
    "LifecycleConfig",
    "MaintenanceEngine",
    "lookup_range",
    "build_range_view",
    "ColumnTable",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
    "retry",
    "CircuitBreaker",
    "PartialResult",
    "StoreCorruptedError",
    "StoreNotFoundError",
    "baselines",
    "bench",
    "core",
    "data",
    "lifecycle",
    "nn",
    "resilience",
    "serve",
    "shard",
    "storage",
    "store",
    "testing",
]
