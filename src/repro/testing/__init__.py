"""Fault-injection doubles for resilience testing.

Chaos engineering needs *deterministic* chaos: every double here draws
its failures from a seeded RNG (or an explicit script), so a failing
chaos test replays bit-for-bit from its seed.  Three layers of the stack
get a saboteur:

- :class:`FaultInjectingBackend` — wraps a
  :class:`~repro.storage.backends.StorageBackend`; injects transient
  read errors, single-byte payload corruption, latency, and scripted
  fail-next-N, per blob-name filter.
- :class:`ChaosStore` — wraps any
  :class:`~repro.store.protocol.DataStore`; injects lookup errors,
  latency, and hangs (bounded, or held until :meth:`ChaosStore.release`),
  while staying deadline-transparent so the serve tier's budget
  machinery is what is actually under test.
- :func:`break_shard` — swaps one shard of a
  :class:`~repro.shard.store.ShardedDeepMapping` for a failing or
  hanging proxy, the unit of fault for partial-result tests.
- :func:`serve_backend` / :class:`RangeServer` — an in-process HTTP
  range server over any local backend, with request accounting and
  scripted fault/latency injection, so the remote read path
  (``http://`` opens, lazy hydration) is testable without a network.

These are test doubles, not mocks of the contract: everything they do
not sabotage is delegated to the real object, so a chaos run still
exercises the production read path end to end.
"""

from .chaos import ChaosStore, break_shard
from .faults import FaultInjectingBackend
from .range_server import RangeServer, RequestRecord, serve_backend

__all__ = ["ChaosStore", "FaultInjectingBackend", "break_shard",
           "RangeServer", "RequestRecord", "serve_backend"]
