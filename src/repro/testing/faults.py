"""A storage backend that injects faults into the read path.

Wraps any :class:`~repro.storage.backends.StorageBackend` and sabotages
reads on a seeded schedule: transient ``OSError``\\ s (what the retry
policy and circuit breaker exist for), single-byte corruption (what the
container checksums exist for), and added latency (what deadlines exist
for).  Writes pass through untouched — chaos tests corrupt what readers
see, not what is durably stored, so a retry after a detected corruption
can legitimately succeed.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

__all__ = ["FaultInjectingBackend"]


class FaultInjectingBackend:
    """Deterministic saboteur around a real storage backend.

    Parameters
    ----------
    inner:
        The backend actually holding the blobs.
    error_rate / corrupt_rate:
        Per-read probabilities (drawn from ``seed``) of raising a
        transient ``OSError`` or of flipping one byte of the returned
        payload.  Corruption is *read-side*: the stored blob stays
        intact, so a caller that detects the damage and re-reads gets
        clean bytes — exactly the cache-miss-and-retry-once contract.
    latency_s:
        Fixed delay added to every matching read (deadline fodder).
    seed:
        Seeds the fault schedule; same seed, same faults.
    match:
        Optional blob-name predicate; non-matching blobs are never
        sabotaged (e.g. target one shard's payload only).

    ``fail_next(n)`` scripts ``n`` guaranteed failures ahead of the
    probabilistic schedule — for tests that need "the first read fails,
    the retry succeeds" without tuning rates.  Counters
    ``injected_errors`` / ``injected_corruptions`` record what actually
    happened.
    """

    def __init__(self, inner, *, error_rate: float = 0.0,
                 corrupt_rate: float = 0.0, latency_s: float = 0.0,
                 seed: int = 0,
                 match: Optional[Callable[[str], bool]] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.error_rate = float(error_rate)
        self.corrupt_rate = float(corrupt_rate)
        self.latency_s = float(latency_s)
        self.match = match
        self.injected_errors = 0
        self.injected_corruptions = 0
        self._fail_next = 0
        self._fail_exc: Callable[[], BaseException] = \
            lambda: OSError("injected transient read error")
        self._rng = np.random.default_rng(seed)
        self._sleep = sleep

    # -- scripting -----------------------------------------------------
    def fail_next(self, n: int = 1,
                  exc_factory: Optional[Callable[[], BaseException]] = None,
                  ) -> None:
        """Force the next ``n`` matching reads to fail (deterministic)."""
        self._fail_next = int(n)
        if exc_factory is not None:
            self._fail_exc = exc_factory

    # -- the sabotage itself -------------------------------------------
    def _matches(self, name: str) -> bool:
        return self.match is None or bool(self.match(name))

    def _maybe_fail(self, name: str) -> None:
        if not self._matches(name):
            return
        if self.latency_s > 0.0:
            self._sleep(self.latency_s)
        if self._fail_next > 0:
            self._fail_next -= 1
            self.injected_errors += 1
            raise self._fail_exc()
        if self.error_rate > 0.0 and self._rng.random() < self.error_rate:
            self.injected_errors += 1
            raise OSError("injected transient read error")

    def _maybe_corrupt(self, name: str, payload: bytes) -> bytes:
        if (not self._matches(name) or len(payload) == 0
                or self.corrupt_rate <= 0.0
                or self._rng.random() >= self.corrupt_rate):
            return payload
        self.injected_corruptions += 1
        position = int(self._rng.integers(len(payload)))
        damaged = bytearray(payload)
        damaged[position] ^= 0xFF
        return bytes(damaged)

    def corrupt_byte(self, payload: bytes,
                     position: Optional[int] = None) -> bytes:
        """Flip one byte (``position`` or seeded-random); for tests that
        damage a blob in place via ``inner.write_bytes``."""
        if position is None:
            position = int(self._rng.integers(len(payload)))
        damaged = bytearray(payload)
        damaged[position] ^= 0xFF
        self.injected_corruptions += 1
        return bytes(damaged)

    # -- StorageBackend surface ----------------------------------------
    def read_bytes(self, name: str) -> bytes:
        self._maybe_fail(name)
        return self._maybe_corrupt(name, self.inner.read_bytes(name))

    def read_view(self, name: str):
        self._maybe_fail(name)
        view = self.inner.read_view(name)
        if self.corrupt_rate > 0.0 and self._matches(name):
            # A view cannot be corrupted in place (it may be a shared
            # mmap of the durable file); materialize a damaged copy.
            return memoryview(self._maybe_corrupt(name, bytes(view)))
        return view

    def write_bytes(self, name: str, payload: bytes) -> int:
        return self.inner.write_bytes(name, payload)

    def exists(self, name: str) -> bool:
        self._maybe_fail(name)
        return self.inner.exists(name)

    def list(self):
        return self.inner.list()

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def __getattr__(self, name: str):
        # url / scheme / blob_version / batch — whatever the inner
        # backend exposes beyond the protocol, delegate.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (f"FaultInjectingBackend({self.inner!r}, "
                f"error_rate={self.error_rate}, "
                f"corrupt_rate={self.corrupt_rate})")
