"""Chaos doubles at the store and shard granularity.

:class:`ChaosStore` sits where the serve tier holds its store reference
and injects the failure modes a production store exhibits under stress —
errors, latency, outright hangs — without touching the store itself.
:func:`break_shard` goes one level deeper: it swaps a single shard of a
:class:`~repro.shard.store.ShardedDeepMapping` for a saboteur proxy, the
fault unit that partial-result fan-out isolation is specified against.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import Callable, Optional

import numpy as np

__all__ = ["ChaosStore", "break_shard", "BrokenShardProxy"]


def _settle(future: Future, result=None, exception=None) -> None:
    """Resolve ``future`` from a worker thread, tolerating the waiter
    having cancelled it (a hung lookup abandoned past its deadline)."""
    try:
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class ChaosStore:
    """A :class:`~repro.store.protocol.DataStore` proxy that misbehaves.

    Parameters
    ----------
    inner:
        The real store; everything not sabotaged delegates to it.
    error_rate:
        Seeded per-lookup probability of raising ``RuntimeError``
        *before* touching the inner store.
    latency_s:
        Fixed delay added to every lookup (the slow-dependency mode).
    hang_s:
        When set, every lookup blocks until :meth:`release` is called
        or ``hang_s`` elapses — the wedged-dependency mode deadline
        tests are written against.  Keep it comfortably above the
        deadlines under test; :meth:`release` (or ``close``) frees the
        worker threads at teardown.
    seed:
        Seeds the error schedule; same seed, same faults.

    The async surface matters more than the sync one here: the serve
    tier calls ``lookup_async`` and sniffs it for deadline support, so
    this proxy exposes the same ``deadline`` / ``on_shard_error``
    keywords and forwards them only when the inner store understands
    them — a ChaosStore over a sharded store keeps budget push-down
    working, and over a monolithic store degrades exactly as the real
    thing would.
    """

    def __init__(self, inner, *, error_rate: float = 0.0,
                 latency_s: float = 0.0, hang_s: Optional[float] = None,
                 seed: int = 0):
        self.inner = inner
        self.error_rate = float(error_rate)
        self.latency_s = float(latency_s)
        self.hang_s = hang_s
        self.injected_errors = 0
        self.injected_hangs = 0
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()
        self._scripted_failures = 0
        self._released = threading.Event()
        try:
            self._inner_takes_deadline = "deadline" in \
                inspect.signature(inner.lookup_async).parameters
        except (TypeError, ValueError):
            self._inner_takes_deadline = False

    # -- chaos controls ------------------------------------------------
    def release(self) -> None:
        """Unblock every hanging lookup (hang mode becomes a no-op)."""
        self._released.set()

    def fail_next(self, n: int = 1) -> None:
        """Script the next ``n`` lookups to fail deterministically.

        Coalescing makes probabilistic ``error_rate`` awkward in serve
        tests — 32 client requests may reach the store as one merged
        call — so deterministic scripting is the primary error mode.
        """
        with self._rng_lock:
            self._scripted_failures += int(n)

    def _misbehave(self) -> None:
        if self.hang_s is not None and not self._released.is_set():
            self.injected_hangs += 1
            self._released.wait(self.hang_s)
        if self.latency_s > 0.0:
            time.sleep(self.latency_s)
        with self._rng_lock:
            if self._scripted_failures > 0:
                self._scripted_failures -= 1
                self.injected_errors += 1
                raise RuntimeError("injected store error")
        if self.error_rate > 0.0:
            with self._rng_lock:
                roll = self._rng.random()
            if roll < self.error_rate:
                self.injected_errors += 1
                raise RuntimeError("injected store error")

    # -- DataStore read surface ----------------------------------------
    def lookup(self, keys, *, deadline=None, on_shard_error=None):
        self._misbehave()
        if self._inner_takes_deadline:
            return self.inner.lookup(keys, deadline=deadline,
                                     on_shard_error=on_shard_error)
        return self.inner.lookup(keys)

    def lookup_async(self, keys, *, deadline=None,
                     on_shard_error=None) -> Future:
        """Chaos-wrapped async lookup.

        The misbehavior runs on a private thread (not the caller's),
        so a hang wedges the *future*, never the event loop — the
        failure shape the serve tier's ``wait_for`` bound must absorb.
        """
        future: Future = Future()

        def run() -> None:
            try:
                result = self.lookup(keys, deadline=deadline,
                                     on_shard_error=on_shard_error)
            except BaseException as exc:  # future carries the failure
                _settle(future, exception=exc)
            else:
                _settle(future, result=result)

        thread = threading.Thread(target=run, name="chaos-lookup",
                                  daemon=True)
        thread.start()
        return future

    def close(self) -> None:
        self.release()  # free any hanging workers before the store goes
        self.inner.close()

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return (f"ChaosStore({self.inner!r}, error_rate={self.error_rate}, "
                f"latency_s={self.latency_s}, hang_s={self.hang_s})")


class BrokenShardProxy:
    """One shard replaced by a saboteur: fails, hangs, or dawdles.

    Supports the two entry points the sharded fan-out uses
    (:meth:`plan_lookup` for the pipelined path, :meth:`lookup` for the
    barrier/single-shard paths) and delegates everything else — dtype
    promotion still reads the real shard's vocab, so routing and output
    allocation are unchanged and healthy shards stay bit-identical.
    """

    def __init__(self, inner, *, exc_factory: Optional[
            Callable[[], BaseException]] = None,
            delay_s: float = 0.0,
            release: Optional[threading.Event] = None,
            delay_rate: float = 1.0,
            slow_first: Optional[int] = None,
            seed: int = 0):
        self._inner = inner
        self._exc_factory = exc_factory
        self._delay_s = float(delay_s)
        self._release = release
        #: Transient-slowness modes (for hedging tests, where the point
        #: is that a RETRY of the same work is fast): ``slow_first=N``
        #: dawdles only on the first N calls; ``delay_rate`` dawdles a
        #: seeded random fraction of calls instead of all of them.
        self._delay_rate = float(delay_rate)
        self._slow_first = slow_first
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self.calls = 0

    def _sabotage(self) -> None:
        with self._lock:
            self.calls += 1
            call_index = self.calls
            dawdle = self._delay_s > 0.0 or self._release is not None
            if dawdle and self._slow_first is not None \
                    and call_index > self._slow_first:
                dawdle = False
            if dawdle and self._delay_rate < 1.0 \
                    and self._rng.random() >= self._delay_rate:
                dawdle = False
        if dawdle:
            if self._release is not None:
                self._release.wait(self._delay_s)
            elif self._delay_s > 0.0:
                time.sleep(self._delay_s)
        if self._exc_factory is not None:
            raise self._exc_factory()

    def plan_lookup(self, keys, presorted: bool = False):
        self._sabotage()
        return self._inner.plan_lookup(keys, presorted=presorted)

    def lookup(self, keys):
        self._sabotage()
        return self._inner.lookup(keys)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def break_shard(store, ordinal: int, *,
                exc_factory: Optional[Callable[[], BaseException]] = None,
                delay_s: float = 0.0,
                release: Optional[threading.Event] = None,
                delay_rate: float = 1.0,
                slow_first: Optional[int] = None,
                seed: int = 0) -> Callable[[], None]:
    """Swap ``store.shards[ordinal]`` for a saboteur; returns a restorer.

    Default sabotage is a clean failure (``RuntimeError``); pass
    ``delay_s`` (optionally with a ``release`` event) for a straggler
    that outlives deadlines instead, or both for a slow failure.
    ``slow_first`` / ``delay_rate`` make the slowness transient (only
    the first N calls, or a seeded fraction of calls, dawdle) — the
    fault shape hedged reads exist for: the backup attempt of the same
    work is fast.  The returned zero-argument callable puts the real
    shard back::

        restore = break_shard(store, 1)
        try:
            ...  # chaos assertions
        finally:
            restore()
    """
    if store.shards[ordinal] is None:
        raise ValueError(f"shard {ordinal} is empty; nothing to break")
    if exc_factory is None and delay_s <= 0.0 and release is None:
        exc_factory = lambda: RuntimeError(  # noqa: E731
            f"injected failure in shard {ordinal}")
    original = store.shards[ordinal]
    store.shards[ordinal] = BrokenShardProxy(
        original, exc_factory=exc_factory, delay_s=delay_s, release=release,
        delay_rate=delay_rate, slow_first=slow_first, seed=seed)

    def restore() -> None:
        store.shards[ordinal] = original

    return restore
