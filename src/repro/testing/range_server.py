"""In-process HTTP range server over any local storage backend.

The remote backend (``repro.storage.remote``) talks plain HTTP with
``Range:`` requests — which means it can be tested, benchmarked, and
chaos-injected entirely in-process: :func:`serve_backend` spins up a
:class:`RangeServer` (a ``ThreadingHTTPServer`` on a loopback ephemeral
port) that serves the blobs of *any* local
:class:`~repro.storage.backends.StorageBackend`, and
``repro.open(server.url)`` then exercises the real network read path
end to end.

Beyond correctness (206 partial content with ``Content-Range``, 416
past-EOF, 404 for absent blobs, ``ETag`` derived from the backend's
``blob_version``, a JSON name listing at the base path), the server is
an *accountant* and a *saboteur*:

- every request is recorded as a :class:`RequestRecord` — method, blob
  name, raw ``Range`` header, response status — so tests can assert
  "the cold open fetched zero shard payloads" byte-for-byte;
- :meth:`RangeServer.fail_next` queues N scripted error responses
  (default 503) and :attr:`RangeServer.latency_s` delays every
  response, for retry/deadline tests.

For payload *corruption* chaos, wrap the local backend in
:class:`~repro.testing.faults.FaultInjectingBackend` before serving it —
the server delegates every read to the backend it was given, so the
whole chaos toolkit composes.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import re
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

__all__ = ["RangeServer", "RequestRecord", "serve_backend"]

_RANGE_RE = re.compile(r"bytes=(\d*)-(\d*)\s*$")


@dataclass(frozen=True)
class RequestRecord:
    """One served request: what was asked, and how it was answered."""

    method: str
    #: Unquoted blob name; ``""`` for the base-path listing request.
    name: str
    #: Raw ``Range`` header, or None for whole-blob / HEAD requests.
    range: Optional[str]
    status: int


def _parse_range(spec: str, size: int):
    """``Range`` header -> inclusive ``(start, end)``, or None for 416.

    Handles the three RFC 7233 single-range shapes (``a-b``, ``a-``,
    ``-n``), clamps the end to the blob, and treats everything
    unsatisfiable — malformed, start past EOF, empty suffix — as None.
    """
    match = _RANGE_RE.match(spec.strip())
    if match is None:
        return None
    first, last = match.group(1), match.group(2)
    if not first:
        if not last or int(last) == 0:
            return None
        return max(0, size - int(last)), size - 1
    start = int(first)
    if start >= size:
        return None
    end = size - 1 if not last else min(int(last), size - 1)
    if end < start:
        return None
    return start, end


class _Handler(BaseHTTPRequestHandler):
    # Keep-alive matters here: the hydration path issues many small
    # ranged GETs per blob, and HTTP/1.0's connection-per-request would
    # distort every latency measurement the benchmarks make.
    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # silence stderr chatter
        pass

    def do_GET(self) -> None:
        self._serve("GET")

    def do_HEAD(self) -> None:
        self._serve("HEAD")

    # ------------------------------------------------------------------
    def _serve(self, method: str) -> None:
        server: "RangeServer" = self.server  # type: ignore[assignment]
        if server.latency_s > 0:
            time.sleep(server.latency_s)
        name = urllib.parse.unquote(self.path.lstrip("/"))
        range_header = self.headers.get("Range")

        fault = server._pop_fault()
        if fault is not None:
            server._record(method, name, range_header, fault)
            self._respond(fault, b"injected fault", method)
            return

        backend = server.backend
        if name == "":
            try:
                names = sorted(backend.list())
            except Exception:
                names = []
            server._record(method, name, range_header, 200)
            self._respond(200, json.dumps(names).encode("utf-8"), method,
                          content_type="application/json")
            return

        try:
            if not backend.exists(name):
                server._record(method, name, range_header, 404)
                self._respond(404, b"no such blob", method)
                return
            size = server._size(name)
            extra = {}
            etag = server._etag(name)
            if etag is not None:
                extra["ETag"] = etag
            if method == "HEAD":
                server._record("HEAD", name, range_header, 200)
                self._respond(200, b"", "HEAD", extra=extra,
                              content_length=size)
                return
            if range_header is not None:
                span = _parse_range(range_header, size)
                if span is None:
                    extra["Content-Range"] = f"bytes */{size}"
                    server._record("GET", name, range_header, 416)
                    self._respond(416, b"", "GET", extra=extra)
                    return
                start, end = span
                payload = server._read(name, start, end - start + 1)
                extra["Content-Range"] = f"bytes {start}-{end}/{size}"
                server._record("GET", name, range_header, 206)
                self._respond(206, payload, "GET", extra=extra)
                return
            payload = server._read(name, 0, size)
            server._record("GET", name, None, 200)
            self._respond(200, payload, "GET", extra=extra)
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as exc:  # backend fault -> 500, not a hang
            server._record(method, name, range_header, 500)
            self._respond(500, f"backend error: {exc}".encode("utf-8"),
                          method)

    def _respond(self, status: int, body: bytes, method: str, *,
                 extra=None, content_type: str = "application/octet-stream",
                 content_length: Optional[int] = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Accept-Ranges", "bytes")
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(
                len(body) if content_length is None else content_length))
            for key, value in (extra or {}).items():
                self.send_header(key, value)
            self.end_headers()
            if method != "HEAD" and body:
                self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up (deadline, retry) — not our problem


class RangeServer(ThreadingHTTPServer):
    """Loopback HTTP server exposing a local backend's blobs with ranges.

    Construct directly (then drive ``serve_forever`` yourself) or — the
    usual way — through the :func:`serve_backend` context manager.
    """

    daemon_threads = True

    def __init__(self, backend):
        super().__init__(("127.0.0.1", 0), _Handler)
        self.backend = backend
        #: Every request served, in arrival order (see helpers below).
        self.requests: List[RequestRecord] = []
        #: Fixed delay applied to every response (seconds).
        self.latency_s = 0.0
        self._faults: List[int] = []
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- sabotage ----------------------------------------------------------
    def fail_next(self, n: int = 1, status: int = 503) -> None:
        """Answer the next ``n`` requests with ``status`` (then recover)."""
        with self._lock:
            self._faults.extend([int(status)] * int(n))

    def _pop_fault(self) -> Optional[int]:
        with self._lock:
            return self._faults.pop(0) if self._faults else None

    # -- accounting --------------------------------------------------------
    def _record(self, method: str, name: str, range_header, status: int):
        with self._lock:
            self.requests.append(
                RequestRecord(method, name, range_header, status))

    def reset_requests(self) -> None:
        """Forget the request log (keeps faults/latency settings)."""
        with self._lock:
            self.requests.clear()

    def request_count(self, name: Optional[str] = None,
                      method: Optional[str] = None) -> int:
        """Requests served, optionally filtered by blob name / method."""
        with self._lock:
            return sum(1 for r in self.requests
                       if (name is None or r.name == name)
                       and (method is None or r.method == method))

    def blobs_fetched(self) -> List[str]:
        """Sorted names of blobs whose *bytes* were requested (GETs;
        the base-path listing and HEAD probes don't count)."""
        with self._lock:
            return sorted({r.name for r in self.requests
                           if r.name and r.method == "GET"})

    # -- backend access (handler side) ------------------------------------
    def _size(self, name: str) -> int:
        sizer = getattr(self.backend, "size", None)
        if sizer is not None:
            return int(sizer(name))
        return len(self.backend.read_bytes(name))

    def _read(self, name: str, start: int, length: int) -> bytes:
        reader = getattr(self.backend, "read_range", None)
        if reader is not None:
            return bytes(reader(name, start, length))
        return bytes(self.backend.read_bytes(name)[start:start + length])

    def _etag(self, name: str) -> Optional[str]:
        versioner = getattr(self.backend, "blob_version", None)
        if versioner is None:
            return None
        try:
            version = versioner(name)
        except Exception:
            return None
        if version is None:
            return None
        digest = hashlib.sha256(repr(version).encode("utf-8")).hexdigest()
        return f'"{digest[:32]}"'


@contextlib.contextmanager
def serve_backend(backend):
    """Serve ``backend`` over loopback HTTP for the ``with`` body.

    Yields the running :class:`RangeServer`; ``server.url`` is the
    ``http://127.0.0.1:<port>`` base that ``repro.open`` (or a raw
    ``HttpBackend``) points at.  The server and its worker threads are
    shut down on exit.
    """
    server = RangeServer(backend)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-range-server", daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
