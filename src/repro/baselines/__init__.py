"""Comparison baselines from the paper's evaluation (Sec. V-A3).

========  ==============================================================
Name      Meaning
========  ==============================================================
AB        array-based, uncompressed
ABC-D     array-based + dictionary encoding
ABC-G     array-based + Gzip
ABC-Z     array-based + Z-Standard (stand-in codec)
ABC-L     array-based + LZMA
HB        hash-based, uncompressed
HBC-Z     hash-based + Z-Standard (stand-in codec)
HBC-L     hash-based + LZMA
DS        DeepSqueeze (semantic, lossy, error bound 0.001)
========  ==============================================================

:func:`make_baseline` builds any of them by paper name.
"""

from typing import Optional

from ..storage.buffer_pool import BufferPool
from ..storage.disk import DiskStore
from ..storage.stats import StoreStats
from .array_store import ArrayStore
from .base import BaselineStore
from .deepsqueeze import DeepSqueeze
from .hash_store import HashStore

__all__ = [
    "BaselineStore",
    "ArrayStore",
    "HashStore",
    "DeepSqueeze",
    "make_baseline",
    "BASELINE_NAMES",
]

BASELINE_NAMES = (
    "AB", "ABC-D", "ABC-G", "ABC-Z", "ABC-L", "HB", "HBC-Z", "HBC-L", "DS",
)


def make_baseline(
    name: str,
    target_partition_bytes: int = 128 * 1024,
    disk: Optional[DiskStore] = None,
    pool: Optional[BufferPool] = None,
    stats: Optional[StoreStats] = None,
    **kwargs,
) -> BaselineStore:
    """Instantiate a baseline by its paper name (see module docstring)."""
    common = dict(disk=disk, pool=pool, stats=stats)
    if name == "AB":
        return ArrayStore(codec="none",
                          target_partition_bytes=target_partition_bytes,
                          **common)
    if name == "ABC-D":
        return ArrayStore(codec="none", dict_encode=True,
                          target_partition_bytes=target_partition_bytes,
                          **common)
    if name in ("ABC-G", "ABC-Z", "ABC-L"):
        codec = {"ABC-G": "gzip", "ABC-Z": "zstd", "ABC-L": "lzma"}[name]
        return ArrayStore(codec=codec,
                          target_partition_bytes=target_partition_bytes,
                          **common)
    if name == "HB":
        return HashStore(codec="none",
                         target_partition_bytes=target_partition_bytes,
                         **common)
    if name in ("HBC-Z", "HBC-L"):
        codec = {"HBC-Z": "zstd", "HBC-L": "lzma"}[name]
        return HashStore(codec=codec,
                         target_partition_bytes=target_partition_bytes,
                         **common)
    if name == "DS":
        return DeepSqueeze(**common, **kwargs)
    raise KeyError(f"unknown baseline {name!r}; have {BASELINE_NAMES}")
