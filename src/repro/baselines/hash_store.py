"""Hash-based baselines: HB and HBC-{Z,L} (paper Sec. V-A3).

Rows are hash-partitioned by key; each partition is a serialized Python
dict ``{key: (values...)}``.  Probes inside a loaded partition are O(1),
but the representation is larger than arrays and — the paper's repeated
finding — deserializing pickled dicts is far more expensive than loading
numpy arrays, which is why hash stores collapse when partitions do not fit
the memory pool (Table I, Fig. 7's purple bars).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..storage.buffer_pool import BufferPool
from ..storage.codecs import get_codec
from ..storage.disk import DiskStore
from ..storage.serializer import deserialize_block, serialize_block
from ..storage.stats import StoreStats
from .base import BaselineStore

__all__ = ["HashStore"]

_NAMES = {"none": "HB", "zstd": "HBC-Z", "lzma": "HBC-L", "gzip": "HBC-G"}


class HashStore(BaselineStore):
    """Hash-partitioned dict representation with optional compression.

    Parameters
    ----------
    codec:
        Byte codec per partition (``none`` = the paper's HB).
    target_partition_bytes:
        Desired serialized partition size; the paper finds small hash
        partitions (~128KB) deserialize fastest (Sec. V-A5).
    """

    def __init__(
        self,
        codec: str = "none",
        target_partition_bytes: int = 128 * 1024,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
    ):
        super().__init__(disk=disk, pool=pool, stats=stats)
        if target_partition_bytes <= 0:
            raise ValueError("target_partition_bytes must be positive")
        self.name = _NAMES.get(codec, f"HBC-{codec}")
        self.codec = get_codec(codec)
        self.target_partition_bytes = target_partition_bytes
        self._n_partitions = 1
        self._partition_bytes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _build_impl(self, flat_keys: np.ndarray,
                    values: Dict[str, np.ndarray]) -> None:
        n = flat_keys.size
        if n == 0:
            self._n_partitions = 1
            self._write_partition(0, {})
            return
        # Estimate bytes per entry from a sample to size partition count.
        probe = min(n, 1024)
        sample = self._rows_dict(flat_keys[:probe], values, np.arange(probe))
        per_entry = max(1.0, len(serialize_block(sample)) / probe)
        self._n_partitions = max(1, int(np.ceil(
            n * per_entry / self.target_partition_bytes)))
        pids = flat_keys % self._n_partitions
        for pid in range(self._n_partitions):
            idx = np.flatnonzero(pids == pid)
            self._write_partition(
                pid, self._rows_dict(flat_keys, values, idx))

    def _rows_dict(self, flat_keys, values, idx) -> Dict[int, tuple]:
        names = self._value_names
        return {
            int(flat_keys[i]): tuple(values[n][i] for n in names)
            for i in idx
        }

    def _write_partition(self, pid: int, table: Dict[int, tuple]) -> None:
        payload = self.codec.compress(serialize_block(table))
        stored = self.disk.write(self._blob_name(pid), payload)
        self._partition_bytes[pid] = stored
        self.pool.invalidate(self._blob_name(pid))

    def _blob_name(self, pid: int) -> str:
        return f"hash-{self.codec.name}-{pid:06d}"

    def _load_partition(self, pid: int) -> Dict[int, tuple]:
        name = self._blob_name(pid)

        def loader():
            payload = self.disk.read(name)
            with self.stats.timing("decompress"):
                raw = self.codec.decompress(payload)
            with self.stats.timing("deserialize"):
                table = deserialize_block(raw)
            # Python dicts cost far more resident memory than their pickle;
            # charge a conservative expansion factor to the pool.
            return table, max(len(raw) * 3, 64)

        return self.pool.get(name, loader)

    # ------------------------------------------------------------------
    def _lookup_impl(
        self, flat_keys: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        names = self._value_names
        found = np.zeros(flat_keys.size, dtype=bool)
        out: Dict[str, list] = {n: [None] * flat_keys.size for n in names}
        with self.stats.timing("locate"):
            pids = flat_keys % self._n_partitions
        for pid in np.unique(pids):
            table = self._load_partition(int(pid))
            rows = np.flatnonzero(pids == pid)
            with self.stats.timing("search"):
                for i in rows.tolist():
                    entry = table.get(int(flat_keys[i]))
                    if entry is not None:
                        found[i] = True
                        for j, n in enumerate(names):
                            out[n][i] = entry[j]
        values = {n: np.array(col, dtype=object) for n, col in out.items()}
        return found, values

    # ------------------------------------------------------------------
    def insert(self, rows) -> None:
        """Insert rows: each touched partition is deserialized, mutated,
        re-serialized and rewritten (the paper's slow hash insertion)."""
        self._require_built()
        columns = self._rows_to_columns(rows)
        key_cols = {k: columns[k] for k in self._key_codec.key_names}
        if not self._key_codec.extend_domain(key_cols):
            raise ValueError("inserted keys cannot extend the key domain")
        flat = self._key_codec.flatten(key_cols)
        pids = flat % self._n_partitions
        for pid in np.unique(pids):
            table = dict(self._load_partition(int(pid)))
            for i in np.flatnonzero(pids == pid).tolist():
                table[int(flat[i])] = tuple(
                    columns[n][i] for n in self._value_names
                )
            self._write_partition(int(pid), table)
        self._n_rows += int(flat.size)

    def delete(self, keys) -> int:
        """Delete keys, rewriting each touched partition."""
        self._require_built()
        key_cols = self._normalize_keys(keys)
        flat, in_domain = self._key_codec.try_flatten(key_cols)
        flat = flat[in_domain]
        removed = 0
        pids = flat % self._n_partitions
        for pid in np.unique(pids):
            table = dict(self._load_partition(int(pid)))
            touched = False
            for i in np.flatnonzero(pids == pid).tolist():
                if table.pop(int(flat[i]), None) is not None:
                    removed += 1
                    touched = True
            if touched:
                self._write_partition(int(pid), table)
        self._n_rows -= removed
        return removed

    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Compressed partition bytes on disk."""
        return sum(self._partition_bytes.values())

    @property
    def partition_count(self) -> int:
        """Number of hash partitions."""
        return self._n_partitions

    @staticmethod
    def _rows_to_columns(rows) -> Dict[str, np.ndarray]:
        if hasattr(rows, "columns_dict"):
            return rows.columns_dict()
        return {n: np.asarray(v) for n, v in rows.items()}
