"""Common interface for the paper's comparison baselines (Sec. V-A3).

Every baseline is a key→value store over a :class:`ColumnTable` with the
same query surface as DeepMapping: batch exact-match lookup returning a
found-mask plus value columns.  Composite keys are flattened with the same
:class:`~repro.data.encoding.CompositeKeyCodec`, so all stores compete on
identical key semantics.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.deep_mapping import LookupResult
from ..data.encoding import CompositeKeyCodec
from ..data.table import ColumnTable
from ..storage.buffer_pool import BufferPool
from ..storage.disk import DiskStore
from ..storage.stats import StoreStats

__all__ = ["BaselineStore"]


class BaselineStore:
    """Abstract baseline key-value store."""

    #: Short display name in the paper's nomenclature (e.g. "ABC-Z").
    name: str = "abstract"

    def __init__(
        self,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
    ):
        self.stats = stats if stats is not None else StoreStats()
        self.disk = disk if disk is not None else DiskStore(stats=self.stats)
        self.pool = pool if pool is not None else BufferPool(stats=self.stats)
        self._key_codec: Optional[CompositeKeyCodec] = None
        self._value_names: Tuple[str, ...] = ()
        self._n_rows = 0

    # ------------------------------------------------------------------
    def build(self, table: ColumnTable) -> "BaselineStore":
        """Load a table into the store; returns self for chaining."""
        self._key_codec = CompositeKeyCodec(table.key).fit(
            table.key_columns_dict()
        )
        self._value_names = table.value_columns
        self._n_rows = table.n_rows
        flat = self._key_codec.flatten(table.key_columns_dict())
        if np.unique(flat).size != flat.size:
            raise ValueError("the designated key does not uniquely identify rows")
        self._build_impl(flat, table.value_columns_dict())
        return self

    def _build_impl(self, flat_keys: np.ndarray,
                    values: Dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def lookup(self, keys) -> LookupResult:
        """Batch exact-match lookup with DeepMapping-compatible results."""
        self._require_built()
        key_cols = self._normalize_keys(keys)
        flat, in_domain = self._key_codec.try_flatten(key_cols)
        found, values = self._lookup_impl(flat)
        found &= in_domain
        return LookupResult(found=found, values=values)

    def _lookup_impl(
        self, flat_keys: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def insert(self, rows) -> None:
        """Append new rows (used by the modification experiments)."""
        raise NotImplementedError(f"{self.name} does not support insert")

    def delete(self, keys) -> int:
        """Delete keys; returns the number removed."""
        raise NotImplementedError(f"{self.name} does not support delete")

    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Offline storage footprint."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self._n_rows

    @property
    def value_names(self) -> Tuple[str, ...]:
        """Value column names served by this store."""
        return self._value_names

    # ------------------------------------------------------------------
    def _normalize_keys(self, keys) -> Dict[str, np.ndarray]:
        names = self._key_codec.key_names
        if isinstance(keys, ColumnTable):
            return {k: keys.column(k) for k in names}
        if isinstance(keys, dict):
            missing = [k for k in names if k not in keys]
            if missing:
                raise KeyError(f"missing key columns: {missing}")
            return {k: np.asarray(keys[k]) for k in names}
        arr = np.asarray(keys)
        if len(names) == 1:
            return {names[0]: arr.reshape(-1)}
        if arr.ndim == 2 and arr.shape[1] == len(names):
            return {k: arr[:, i] for i, k in enumerate(names)}
        raise ValueError(f"cannot interpret keys for composite key {names}")

    def _require_built(self) -> None:
        if self._key_codec is None:
            raise RuntimeError(f"{self.name} store has not been built")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, rows={self._n_rows})"
