"""DeepSqueeze baseline (paper Sec. V-A3; Ilkhechi et al., SIGMOD 2020).

Semantic *lossy* compression: an autoencoder learns the joint column
distribution; rows are stored as quantized bottleneck codes plus an outlier
table for cells whose reconstruction misses the error bound ε.  The paper
configures ε = 0.001 and reports DeepSqueeze's two failure modes on these
workloads, both reproduced here:

- categorical columns quantize poorly, so the outlier table bloats and the
  compression ratio lags the syntactic compressors;
- answering point lookups requires running the decoder over the *whole*
  table (semantic compressors have no random access), so constrained
  memory pools OOM — surface a
  :class:`~repro.storage.buffer_pool.MemoryBudgetError` exactly where the
  paper prints "failed".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.encoding import ValueEncoder
from ..nn.layers import Dense
from ..nn.losses import mse
from ..nn.optimizers import Adam
from ..storage.buffer_pool import BufferPool
from ..storage.disk import DiskStore
from ..storage.serializer import serialize_block
from ..storage.stats import StoreStats
from .base import BaselineStore

__all__ = ["DeepSqueeze"]


class DeepSqueeze(BaselineStore):
    """Autoencoder-based semantic compressor with an error bound.

    Parameters
    ----------
    epsilon:
        Error bound on normalized values (paper: 0.001).
    bottleneck / hidden:
        Autoencoder shape.
    epochs / batch_size / lr:
        Training settings (DeepSqueeze trains far shorter than DeepMapping;
        the paper reports ~11 min vs hours).
    """

    name = "DS"

    def __init__(
        self,
        epsilon: float = 0.001,
        bottleneck: int = 2,
        hidden: int = 16,
        epochs: int = 30,
        batch_size: int = 1024,
        lr: float = 0.003,
        seed: int = 0,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
    ):
        super().__init__(disk=disk, pool=pool, stats=stats)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.bottleneck = bottleneck
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._encoders: Dict[str, ValueEncoder] = {}
        self._keys: Optional[np.ndarray] = None
        self._latent_q: Optional[np.ndarray] = None
        self._latent_lo: Optional[np.ndarray] = None
        self._latent_hi: Optional[np.ndarray] = None
        self._outliers: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._decoder: List[Dense] = []
        self._cards: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _build_impl(self, flat_keys: np.ndarray,
                    values: Dict[str, np.ndarray]) -> None:
        rng = np.random.default_rng(self.seed)
        order = np.argsort(flat_keys, kind="stable")
        self._keys = flat_keys[order]
        names = self._value_names

        # Label-encode and normalize each column to [0, 1].
        codes = {}
        for name in names:
            enc = ValueEncoder(name).fit(values[name])
            self._encoders[name] = enc
            self._cards[name] = enc.cardinality
            codes[name] = enc.encode(np.asarray(values[name])[order])
        matrix = np.stack(
            [codes[n] / max(self._cards[n] - 1, 1) for n in names], axis=1
        ).astype(np.float32)

        # Train the autoencoder.
        m = matrix.shape[1]
        enc1 = Dense(m, self.hidden, rng=rng, activation="relu")
        enc2 = Dense(self.hidden, self.bottleneck, rng=rng, activation="linear")
        dec1 = Dense(self.bottleneck, self.hidden, rng=rng, activation="relu")
        dec2 = Dense(self.hidden, m, rng=rng, activation="linear")
        layers = [enc1, enc2, dec1, dec2]
        params = [p for layer in layers for p in layer.parameters()]
        optimizer = Adam(self.lr)
        n = matrix.shape[0]
        for _ in range(self.epochs):
            perm = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = matrix[perm[start: start + self.batch_size]]
                h = batch
                for layer in layers:
                    h = layer.forward(h, train=True)
                _, grad = mse(h, batch)
                for layer in reversed(layers):
                    grad = layer.backward(grad.astype(np.float32))
                optimizer.step(params)

        # Quantize bottleneck codes to uint8 bins.
        latent = enc2.forward(enc1.forward(matrix, train=False), train=False)
        self._latent_lo = latent.min(axis=0)
        self._latent_hi = np.maximum(latent.max(axis=0),
                                     self._latent_lo + 1e-6)
        span = self._latent_hi - self._latent_lo
        self._latent_q = np.clip(
            np.round((latent - self._latent_lo) / span * 255), 0, 255
        ).astype(np.uint8)
        self._decoder = [dec1, dec2]

        # Outliers: cells whose reconstruction misses the error bound.
        recon = self._reconstruct_normalized()
        for j, name in enumerate(names):
            err = np.abs(recon[:, j] - matrix[:, j])
            bad = np.flatnonzero(err > self.epsilon)
            self._outliers[name] = (bad.astype(np.int64),
                                    codes[name][bad].astype(np.int64))

    def _reconstruct_normalized(self) -> np.ndarray:
        span = self._latent_hi - self._latent_lo
        latent = self._latent_q.astype(np.float32) / 255.0 * span + self._latent_lo
        h = latent
        for layer in self._decoder:
            h = layer.forward(h, train=False)
        return h

    def _materialize_codes(self) -> Dict[str, np.ndarray]:
        """Decode the whole table (the expensive decompression step)."""

        def loader():
            with self.stats.timing("decompress"):
                recon = self._reconstruct_normalized()
                out: Dict[str, np.ndarray] = {}
                for j, name in enumerate(self._value_names):
                    card = self._cards[name]
                    code = np.clip(
                        np.round(recon[:, j] * max(card - 1, 1)), 0, card - 1
                    ).astype(np.int64)
                    rows, exact = self._outliers[name]
                    code[rows] = exact
                    out[name] = code
            size = sum(arr.nbytes for arr in out.values()) + recon.nbytes
            return out, size

        return self.pool.get("ds-reconstruction", loader)

    # ------------------------------------------------------------------
    def _lookup_impl(
        self, flat_keys: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        codes = self._materialize_codes()
        with self.stats.timing("search"):
            pos = np.searchsorted(self._keys, flat_keys)
            pos = np.minimum(pos, self._keys.size - 1)
            found = self._keys[pos] == flat_keys
        values = {}
        with self.stats.timing("decode"):
            for name in self._value_names:
                card = self._cards[name]
                safe = np.clip(codes[name][pos], 0, card - 1)
                values[name] = self._encoders[name].decode(safe)
        return found, values

    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Decoder weights + quantized codes + outliers + vocabularies."""
        self._require_built()
        decoder_state = [
            (layer.weight.value, layer.bias.value) for layer in self._decoder
        ]
        blob = {
            "decoder": decoder_state,
            "latent_q": self._latent_q,
            "lo": self._latent_lo,
            "hi": self._latent_hi,
            "keys": self._keys,
            "outliers": self._outliers,
            "vocabs": {n: e.vocab for n, e in self._encoders.items()},
        }
        import zlib

        return len(zlib.compress(serialize_block(blob), 1))

    def outlier_fraction(self) -> float:
        """Fraction of cells stored exactly (diagnostics: the paper's
        'cannot compress categorical data effectively' mechanism)."""
        self._require_built()
        total = self._keys.size * max(len(self._value_names), 1)
        bad = sum(rows.size for rows, _ in self._outliers.values())
        return bad / total if total else 0.0
