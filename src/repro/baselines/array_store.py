"""Array-based baselines: AB and ABC-{D,G,Z,L} (paper Sec. V-A3).

Rows are kept key-sorted in serialized-numpy partitions; lookups binary
search (the machinery shared with ``T_aux`` via
:class:`~repro.storage.partition.SortedPartitionStore`).  ``AB`` stores
partitions uncompressed; ``ABC-*`` applies dictionary encoding (D), Gzip
(G), the Z-Standard stand-in (Z), or LZMA (L).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..storage.buffer_pool import BufferPool
from ..storage.disk import DiskStore
from ..storage.partition import PartitionMeta, SortedPartitionStore
from ..storage.serializer import serialize_block
from ..storage.stats import StoreStats
from .base import BaselineStore

__all__ = ["ArrayStore"]

_NAMES = {
    ("none", False): "AB",
    ("none", True): "ABC-D",
    ("gzip", False): "ABC-G",
    ("zstd", False): "ABC-Z",
    ("lzma", False): "ABC-L",
}


class ArrayStore(BaselineStore):
    """Sorted-array representation with optional compression.

    Parameters
    ----------
    codec:
        Partition byte codec (``none`` = the paper's AB).
    dict_encode:
        Apply dictionary encoding (the paper's ABC-D).
    target_partition_bytes:
        Partition size knob the paper grid-searches (Sec. V-A5).
    """

    def __init__(
        self,
        codec: str = "none",
        dict_encode: bool = False,
        target_partition_bytes: int = 128 * 1024,
        disk: Optional[DiskStore] = None,
        pool: Optional[BufferPool] = None,
        stats: Optional[StoreStats] = None,
    ):
        super().__init__(disk=disk, pool=pool, stats=stats)
        self.name = _NAMES.get((codec, dict_encode), f"ABC-{codec}")
        self._store = SortedPartitionStore(
            codec=codec,
            target_partition_bytes=target_partition_bytes,
            dict_encode=dict_encode,
            disk=self.disk,
            pool=self.pool,
            stats=self.stats,
            name_prefix=f"array-{codec}{'-d' if dict_encode else ''}",
        )

    # ------------------------------------------------------------------
    def _build_impl(self, flat_keys: np.ndarray,
                    values: Dict[str, np.ndarray]) -> None:
        self._store.build(flat_keys, values)

    def _lookup_impl(
        self, flat_keys: np.ndarray
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        return self._store.lookup_batch(flat_keys)

    def stored_bytes(self) -> int:
        """Compressed partition bytes on disk."""
        return self._store.stored_bytes()

    @property
    def partition_count(self) -> int:
        """Number of partitions (diagnostics / tuning tests)."""
        return len(self._store.partitions)

    # ------------------------------------------------------------------
    def insert(self, rows) -> None:
        """Append rows whose keys extend past the current range.

        An array layout absorbing inserts must re-sort and re-compress —
        here the new rows are merged and all partitions rebuilt, the
        recompression cost DeepMapping's overlay avoids (paper Fig. 8
        measures this gap).
        """
        self._require_built()
        columns = self._rows_to_columns(rows)
        key_cols = {k: columns[k] for k in self._key_codec.key_names}
        if not self._key_codec.extend_domain(key_cols):
            raise ValueError("inserted keys cannot extend the key domain")
        flat_new = self._key_codec.flatten(key_cols)

        old_keys, old_values = self._store.scan()
        all_keys = np.concatenate([old_keys, flat_new])
        all_values = {
            n: np.concatenate([old_values[n], np.asarray(columns[n])])
            for n in self._value_names
        }
        self._store.build(all_keys, all_values)
        self._n_rows = int(all_keys.size)

    def append_partition(self, rows) -> None:
        """Append new rows as one extra partition, old partitions untouched.

        The cheaper insert variant for monotone keys: still pays serialize
        + compress + write for the new partition.  Requires every new key
        to sort after the existing range.
        """
        self._require_built()
        columns = self._rows_to_columns(rows)
        key_cols = {k: columns[k] for k in self._key_codec.key_names}
        if not self._key_codec.extend_domain(key_cols):
            raise ValueError("appended keys cannot extend the key domain")
        flat = self._key_codec.flatten(key_cols)
        metas = self._store.partitions
        last_key = metas[-1].last_key if metas else -1
        if flat.size and int(flat.min()) <= last_key:
            raise ValueError("append_partition requires keys beyond the range")

        order = np.argsort(flat, kind="stable")
        flat = flat[order]
        values = {n: np.asarray(columns[n])[order] for n in self._value_names}
        block = {"keys": flat, "columns": dict(values)}
        payload = self._store.codec.compress(serialize_block(block))
        name = f"{self._store.name_prefix}-{len(metas):06d}"
        stored = self.disk.write(name, payload)
        self._store._metas.append(PartitionMeta(
            name=name, first_key=int(flat[0]), last_key=int(flat[-1]),
            n_rows=int(flat.size), stored_bytes=stored))
        self._store._refresh_boundaries()
        self._n_rows += int(flat.size)

    def delete(self, keys) -> int:
        """Delete keys by rebuilding the surviving rows."""
        self._require_built()
        key_cols = self._normalize_keys(keys)
        flat, in_domain = self._key_codec.try_flatten(key_cols)
        victims = set(flat[in_domain].tolist())
        old_keys, old_values = self._store.scan()
        keep = np.array([int(k) not in victims for k in old_keys], dtype=bool)
        removed = int((~keep).sum())
        if removed:
            self._store.build(
                old_keys[keep],
                {n: v[keep] for n, v in old_values.items()},
            )
            self._n_rows -= removed
        return removed

    @staticmethod
    def _rows_to_columns(rows) -> Dict[str, np.ndarray]:
        if hasattr(rows, "columns_dict"):
            return rows.columns_dict()
        return {n: np.asarray(v) for n, v in rows.items()}
